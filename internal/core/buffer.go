package core

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spilly-db/spilly/internal/codec"
	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/pages"
	"github.com/spilly-db/spilly/internal/uring"
)

// Mode selects the materialization strategy. Adaptive is Umami's default;
// the other modes exist as the paper's experimental baselines (Figures 2
// and 9, §6.5).
type Mode int

// Materialization modes.
const (
	// ModeAdaptive starts unpartitioned and enables partitioning and
	// spilling at runtime as needed — Umami's adaptive materialization.
	ModeAdaptive Mode = iota
	// ModeNeverPartition never partitions. With no spill configuration it
	// is the pure in-memory engine that fails when memory runs out
	// (Hyper's role in the evaluation).
	ModeNeverPartition
	// ModeAlwaysPartition partitions from the first tuple, like a grace
	// join or partitioning aggregation (the "always partitioning" baseline
	// that is ~5× slower in memory, Figure 2).
	ModeAlwaysPartition
	// ModeSpillAll partitions from the start and, once memory runs out,
	// spills every partition rather than lazily picking victims — the
	// non-hybrid baseline of §6.5.
	ModeSpillAll
)

// ErrOutOfMemory reports that the memory budget was exhausted and the
// configuration permits no spilling (in-memory-only engines).
var ErrOutOfMemory = errors.New("core: memory budget exhausted and spilling disabled")

// oomPanic carries ErrOutOfMemory through operator fast paths; the
// execution engine recovers it at the worker boundary.
type oomPanic struct{}

// PanicOOM raises the out-of-memory panic that RecoverOOM converts to
// ErrOutOfMemory; operators outside this package (e.g. the external sort)
// use it to report budget exhaustion without spill capability.
func PanicOOM() { panic(oomPanic{}) }

// RecoverOOM converts an oomPanic into ErrOutOfMemory; any other panic is
// re-raised. Use in a deferred function around operator work.
func RecoverOOM(errp *error) {
	switch r := recover(); r.(type) {
	case nil:
	case oomPanic:
		if *errp == nil {
			*errp = ErrOutOfMemory
		}
	default:
		panic(r)
	}
}

// SpillConfig enables spilling to an NVMe array.
type SpillConfig struct {
	// Array is the target NVMe array.
	Array *nvmesim.Array
	// Lease owns every spill extent the query's writers allocate; freeing
	// it at query teardown reclaims exactly this query's spilled data.
	// Nil leaves allocations unleased (single-query benches that Reset the
	// array between runs).
	Lease *nvmesim.Lease
	// Compress enables self-regulating compression with the given scale
	// (nil scale = DefaultScale when Compress is true).
	Compress bool
	Scale    []codec.ID
	// RunN is the regulator run length in pages (default 2× MaxAhead).
	RunN int
	// MaxAhead bounds in-flight write requests per thread (default 32).
	MaxAhead int
	// FlushAt is the staging flush threshold in bytes (default: page size,
	// the paper's 64 KiB minimum write).
	FlushAt int
	// Parity enables spill integrity: every spilled page is wrapped in a
	// checksummed frame, and every Parity staging-block writes form an XOR
	// parity stripe group so a lost or corrupt block is reconstructed on
	// read. 0 disables integrity. Groups span distinct devices when
	// Parity+1 <= live devices.
	Parity int
	// Sched, when non-nil, is the engine's shared I/O scheduler for the
	// spill array: every ring this query creates binds to it, so spill
	// writes, readback prefetch, and demand reads are prioritized and
	// rate-shared against concurrent queries (internal/iosched). Nil keeps
	// the private-rings behavior.
	Sched uring.Dispatcher
	// Query is the fairness key the scheduler round-robins this query's
	// requests under (the spill lease ID in engine runs).
	Query uint64
}

// Config configures one materializing operator's Umami state.
type Config struct {
	// Ctx cancels blocking spill I/O waits (nil = background). A canceled
	// context makes writers and readers abort within one I/O poll
	// interval, returning all page buffers to their pools.
	Ctx context.Context
	// PageSize is the materialization page size (default 64 KiB).
	PageSize int
	// FixedTupleSize selects the fixed-layout page format; 0 = slotted.
	FixedTupleSize int
	// Partitions is the partition count once partitioning activates; a
	// power of two, at most MaxPartitions (default 64).
	Partitions int
	// Budget is the operator's memory budget; nil or unlimited budgets
	// never trigger partitioning or spilling on their own.
	Budget *pages.Budget
	// PartitionAt is the fraction of the budget in use at which adaptive
	// partitioning starts (default 0.5). Partitioning must begin before
	// the budget is full so the unpartitioned head stays in memory (§4.2).
	PartitionAt float64
	// Mode selects the materialization strategy.
	Mode Mode
	// Spill enables out-of-memory processing; nil means the operator
	// fails with ErrOutOfMemory when the budget is exhausted.
	Spill *SpillConfig
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.PageSize == 0 {
		out.PageSize = pages.DefaultPageSize
	}
	if out.Partitions == 0 {
		out.Partitions = MaxPartitions
	}
	if out.Partitions > MaxPartitions || bits.OnesCount(uint(out.Partitions)) != 1 {
		panic(fmt.Sprintf("core: Partitions must be a power of two <= %d, got %d", MaxPartitions, out.Partitions))
	}
	if out.PartitionAt == 0 {
		out.PartitionAt = DefaultPartitionAt
	}
	if out.Spill != nil {
		s := *out.Spill
		if s.MaxAhead <= 0 {
			s.MaxAhead = 32
		}
		if s.RunN <= 0 {
			// Short runs adapt within the few hundred pages a laptop-scale
			// spill produces; the paper's 2x-queue-depth default assumes
			// millions of spilled pages.
			s.RunN = 8
		}
		if s.FlushAt <= 0 {
			// The paper's staging areas write out at >= 64 KiB regardless
			// of the page size (§5.3).
			s.FlushAt = out.PageSize
			if s.FlushAt < 64<<10 {
				s.FlushAt = 64 << 10
			}
		}
		out.Spill = &s
	}
	return out
}

// Shared is the cross-thread state of one materializing operator: the
// budget, the partitioning trigger, and the hybrid spill mask. Create one
// Shared per operator instance and one Buffer per worker thread.
type Shared struct {
	cfg         Config
	partShift   uint // shift value once partitioning is active
	partitionOn atomic.Bool
	mask        SpillMask
	// frameSeq issues engine-unique integrity sequence numbers across all
	// threads' writers, so a misdirected read can never serve a frame that
	// happens to carry the expected identity.
	frameSeq atomic.Uint32

	mu       sync.Mutex
	result   Result
	merged   int
	firstErr error
}

// NewShared returns the shared state for one operator.
func NewShared(cfg Config) *Shared {
	c := cfg.withDefaults()
	s := &Shared{cfg: c}
	s.partShift = uint(64 - bits.TrailingZeros(uint(c.Partitions)))
	if c.Mode == ModeAlwaysPartition || c.Mode == ModeSpillAll {
		s.partitionOn.Store(true)
	}
	s.result.Partitions = c.Partitions
	s.result.Spilled = make([][]SpilledSlot, c.Partitions)
	s.result.inMemByPart = make([][]*pages.Page, c.Partitions)
	return s
}

// Config returns the operator configuration (with defaults applied).
func (s *Shared) Config() Config { return s.cfg }

// PartitioningActive reports whether partitioning has been enabled.
func (s *Shared) PartitioningActive() bool { return s.partitionOn.Load() }

// Mask returns the hybrid spill mask.
func (s *Shared) Mask() *SpillMask { return &s.mask }

// triggerPartitioning flips the shared partitioning flag; all threads
// switch at their next page allocation.
func (s *Shared) triggerPartitioning() { s.partitionOn.Store(true) }

// shouldPartition is the adaptive heuristic: Spilly triggers partitioning
// once the operator's allocated memory exceeds PartitionAt × budget (§5.3).
func (s *Shared) shouldPartition() bool {
	b := s.cfg.Budget
	if b == nil || b.Limit() <= 0 {
		return false
	}
	return float64(b.Used()) >= s.cfg.PartitionAt*float64(b.Limit())
}

// Buffer is the per-thread Umami materialization buffer (paper Listing 1).
// Not safe for concurrent use.
type Buffer struct {
	s     *Shared
	shift uint
	parts int

	output []*pages.Page // active page per partition index (hash >> shift)

	perPart   [][]*pages.Page // finalized in-memory pages per partition
	unpart    []*pages.Page   // finalized unpartitioned pages
	partBytes []int64         // local in-memory bytes per partition

	pool   *pages.Pool
	writer *spillWriter
	reg    *Regulator

	lastAlloc time.Time
	tuples    int64
	finished  bool
}

// NewBuffer returns a worker-thread buffer attached to s.
func (s *Shared) NewBuffer() *Buffer {
	cfg := s.cfg
	b := &Buffer{
		s:         s,
		shift:     64,
		parts:     1,
		output:    make([]*pages.Page, 1),
		perPart:   make([][]*pages.Page, cfg.Partitions),
		partBytes: make([]int64, cfg.Partitions),
		pool:      pages.NewPool(cfg.PageSize, cfg.FixedTupleSize, cfg.Budget),
	}
	if s.partitionOn.Load() {
		b.enablePartitioning()
	}
	if cfg.Spill != nil {
		ring := uring.New(cfg.Spill.Array)
		ring.SetLease(cfg.Spill.Lease)
		ring.Bind(cfg.Spill.Sched, uring.ClassSpillWrite, cfg.Spill.Query)
		if cfg.Spill.Compress {
			b.reg = NewRegulator(cfg.Spill.Scale, cfg.Spill.RunN)
		}
		b.writer = newSpillWriter(cfg.Ctx, ring, b.reg, b.pool, cfg.Partitions, cfg.Spill.FlushAt, cfg.Spill.MaxAhead, cfg.Spill.Parity, &s.frameSeq)
	}
	return b
}

// Regulator returns the thread's compression regulator, or nil.
func (b *Buffer) Regulator() *Regulator { return b.reg }

// Tuples returns the number of tuples stored through this buffer.
func (b *Buffer) Tuples() int64 { return b.tuples }

// StoreTuple copies tuple into the buffer under the given hash. This is the
// operator-independent materialization fast path: one shift, one array
// index, one bounds check, one copy (paper Listing 1).
func (b *Buffer) StoreTuple(tuple []byte, hash uint64) {
	p := b.output[hash>>b.shift]
	if p == nil || !p.HasSpace(len(tuple)) {
		p = b.getEmptyPage(hash, len(tuple))
	}
	if _, ok := p.Append(tuple); !ok {
		// A fresh page cannot hold the tuple: objects larger than the
		// page size are unsupported, as in the paper's prototype (§5.3).
		panic(fmt.Sprintf("core: tuple of %d bytes exceeds page capacity", len(tuple)))
	}
	b.tuples++
}

// AllocTuple reserves size bytes in the buffer under the given hash and
// returns the slice to fill in place. Operators that assemble tuples
// field-wise (the aggregation's in-page groups, §4.6) use this.
func (b *Buffer) AllocTuple(size int, hash uint64) []byte {
	p := b.output[hash>>b.shift]
	if p == nil || !p.HasSpace(size) {
		p = b.getEmptyPage(hash, size)
	}
	dst, ok := p.Alloc(size)
	if !ok {
		panic(fmt.Sprintf("core: tuple of %d bytes exceeds page capacity", size))
	}
	b.tuples++
	return dst
}

// partOf returns the partition index for a hash under the active shift,
// or PartUnpartitioned when partitioning is off.
func (b *Buffer) partOf(hash uint64) int {
	if b.shift == 64 {
		return pages.PartUnpartitioned
	}
	return int(hash >> b.shift)
}

// getEmptyPage is the slow path, entered once per filled page. All of
// Umami's adaptivity — the partitioning decision, the spilling decision,
// victim choice, and regulator bookkeeping — lives here, amortized over
// the tuples of a page (paper §4.2).
func (b *Buffer) getEmptyPage(hash uint64, need int) *pages.Page {
	cfg := &b.s.cfg
	idx := hash >> b.shift
	old := b.output[idx]

	// A. Operator cost tracking for self-regulating compression. The
	// interval runs from the END of the previous allocation to the start
	// of this one, so that time stalled inside allocation (waiting for
	// I/O completions) is not misattributed to operator CPU cost — that
	// would suppress compression exactly when the engine is I/O-bound.
	if b.reg != nil && !b.lastAlloc.IsZero() && old != nil {
		b.reg.ObserveOperator(time.Since(b.lastAlloc), old.UsedBytes())
	}
	defer func() {
		if b.reg != nil {
			b.lastAlloc = time.Now()
		}
	}()

	// Retire the full page.
	if old != nil {
		b.retire(old)
		b.output[idx] = nil
	}

	// Partitioning decision (adaptive modes only).
	if b.shift == 64 && cfg.Mode != ModeNeverPartition {
		if b.s.partitionOn.Load() || (cfg.Mode == ModeAdaptive && b.s.shouldPartition()) {
			b.s.triggerPartitioning()
			b.enablePartitioning()
			idx = hash >> b.shift
		}
	}

	// Spilling decision.
	if cfg.Budget.Exhausted(cfg.PageSize) && b.pool.FreePages() == 0 {
		b.makeRoom()
	}

	p := b.pool.Get()
	p.Part = b.partOf(hash)
	b.output[idx] = p
	return p
}

// retire moves a full page out of the active slot: spilled partitions go to
// the writer, everything else stays in memory.
func (b *Buffer) retire(p *pages.Page) {
	if p.Tuples() == 0 {
		b.pool.Put(p)
		return
	}
	if p.Part == pages.PartUnpartitioned {
		b.unpart = append(b.unpart, p)
		return
	}
	if b.writer != nil && b.s.mask.IsSpilled(p.Part) {
		b.writer.spillPage(p)
		return
	}
	b.perPart[p.Part] = append(b.perPart[p.Part], p)
	b.partBytes[p.Part] += int64(p.UsedBytes())
}

// enablePartitioning switches this thread to partitioned materialization.
// Previously materialized pages stay where they are — phase 2 algorithms
// are partition-agnostic over in-memory data (§4.2 "Independence").
func (b *Buffer) enablePartitioning() {
	if b.shift != 64 {
		return
	}
	if p := b.output[0]; p != nil && p.Tuples() > 0 {
		b.unpart = append(b.unpart, p)
	} else if p != nil {
		b.pool.Put(p)
	}
	b.parts = b.s.cfg.Partitions
	b.shift = b.s.partShift
	b.output = make([]*pages.Page, b.parts)
}

// makeRoom frees page memory when the budget is exhausted: reap finished
// writes first; otherwise evict a victim partition chosen through the
// hybrid spill mask; fail only when spilling is impossible.
func (b *Buffer) makeRoom() {
	if b.writer == nil {
		panic(oomPanic{})
	}
	// Finished writes return pages to the pool for free.
	b.writer.drain(false)
	if b.pool.FreePages() > 0 {
		return
	}
	if b.s.cfg.Mode == ModeSpillAll {
		b.s.mask.mask.Store(1<<uint(b.parts) - 1)
		b.evictLocal()
		if b.pool.FreePages() > 0 || b.writer.ring.Outstanding() > 0 {
			b.awaitPage()
			return
		}
	}
	// Steady state: pages are already in flight to the array; wait for
	// one instead of widening the spill set (Listing 2's bounded pool).
	if b.writer.ring.Outstanding() > 0 || b.writer.ring.Pending() > 0 {
		b.awaitPage()
		if b.pool.FreePages() > 0 {
			return
		}
	}
	// Hybrid victim choice: prefer already-spilled partitions, else the
	// largest local one (§5.3).
	if part, ok := b.s.mask.Choose(b.partBytes); ok {
		b.evictPartition(part)
	}
	if b.pool.FreePages() == 0 && b.writer.ring.Outstanding() > 0 {
		b.awaitPage()
		return
	}
	// Last resort: no retired pages anywhere and nothing in flight — the
	// budget is below the active-page working set (workers × partitions ×
	// page size). Evict this thread's entire active page set in one burst
	// rather than overrunning memory without bound; bursting amortizes
	// the eviction, where one-page-at-a-time eviction would thrash with
	// near-empty pages.
	if b.pool.FreePages() == 0 && b.shift != 64 {
		b.evictAllActive()
		if b.pool.FreePages() == 0 && b.writer.ring.Outstanding() > 0 {
			b.awaitPage()
			return
		}
	}
	if b.pool.FreePages() == 0 {
		// Nothing local to evict and nothing in flight. If partitioning
		// has not produced local pages yet (e.g. all data arrived before
		// the trigger), we must overrun the budget rather than lose data;
		// the next allocations will partition and spilling catches up.
		if !b.s.PartitioningActive() && b.s.cfg.Mode != ModeNeverPartition {
			b.s.triggerPartitioning()
		}
	}
}

// evictPartition spills every local retired in-memory page of partition
// part.
func (b *Buffer) evictPartition(part int) {
	pgs := b.perPart[part]
	b.perPart[part] = nil
	b.partBytes[part] = 0
	for _, p := range pgs {
		b.writer.spillPage(p)
	}
	b.writer.pump()
}

// evictAllActive spills this thread's active pages that are at least a
// quarter full, marking their partitions spilled. Near-empty pages are NOT
// evicted: spilling them would bound memory at the cost of unbounded write
// amplification (each spilled page is a full page on the device regardless
// of fill). Keeping them caps the overrun at the active working set while
// capping amplification at 4x.
func (b *Buffer) evictAllActive() {
	threshold := b.s.cfg.PageSize / 4
	for part, p := range b.output {
		if p == nil || p.UsedBytes() < threshold {
			continue
		}
		b.output[part] = nil
		b.s.mask.MarkSpilled(part)
		b.writer.spillPage(p)
	}
	b.writer.pump()
}

// evictLocal spills every local partitioned page (spill-all mode).
func (b *Buffer) evictLocal() {
	for part := range b.perPart {
		b.evictPartition(part)
	}
}

// awaitPage blocks until at least one in-flight write completes, returning
// its page (or staging buffer) to the pool.
func (b *Buffer) awaitPage() {
	b.writer.ring.Submit()
	for b.pool.FreePages() == 0 && b.writer.ring.Outstanding() > 0 {
		b.writer.drain(true)
	}
}

// Finish completes this thread's materialization phase: retires active
// pages, flushes spill staging, waits for outstanding writes, and merges
// local state into the shared Result. Call exactly once per buffer, after
// the last StoreTuple.
func (b *Buffer) Finish() error {
	if b.finished {
		return nil
	}
	b.finished = true
	for i, p := range b.output {
		if p != nil {
			b.retire(p)
			b.output[i] = nil
		}
	}
	var err error
	if b.writer != nil {
		err = b.writer.finish()
	}
	// Clean pages the writer returned to the pool are dead now: release
	// their budget reservation so it tracks only pages that carry tuples.
	b.pool.Close()
	s := b.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil && s.firstErr == nil {
		s.firstErr = err
	}
	r := &s.result
	r.Tuples += b.tuples
	r.Unpartitioned = append(r.Unpartitioned, b.unpart...)
	for part, pgs := range b.perPart {
		r.InMemory = append(r.InMemory, pgs...)
		r.inMemByPart[part] = append(r.inMemByPart[part], pgs...)
	}
	if b.writer != nil {
		for part, slots := range b.writer.slots {
			r.Spilled[part] = append(r.Spilled[part], slots...)
		}
		r.SpilledPages += b.writer.spilledPages
		r.SpilledBytes += b.writer.spilledBytes
		r.WrittenBytes += b.writer.writtenBytes
		r.ParityBytes += b.writer.parityBytes
		r.SpillRetries += b.writer.retries
		r.SpillFailovers += b.writer.failovers
		r.Stripes = append(r.Stripes, b.writer.stripes...)
	}
	if b.reg != nil {
		r.SchemeHistogram = MergeHistograms(r.SchemeHistogram, b.reg.SchemeHistogram())
		r.RegLevelChanges += int64(b.reg.LevelChanges())
		if lvl := b.reg.MaxLevel(); lvl > r.RegMaxLevel {
			r.RegMaxLevel = lvl
		}
	}
	s.merged++
	return err
}

// Result is the outcome of an operator's materialization phase, aggregated
// over all threads.
type Result struct {
	// InMemory holds the partitioned in-memory pages; Unpartitioned holds
	// pages materialized before partitioning started. Phase-2 algorithms
	// treat their union uniformly (§4.2 "Independence").
	InMemory      []*pages.Page
	Unpartitioned []*pages.Page
	// Spilled lists the spilled page slots per partition.
	Spilled [][]SpilledSlot
	// Partitions is the partition count; Mask the spilled-partition bits.
	Partitions int
	Mask       uint64

	// Stripes is the parity stripe directory (SpillConfig.Parity > 0):
	// every staging block's location mapped to the group whose XOR parity
	// can rebuild it. Readers consult it to reconstruct lost or corrupt
	// blocks on read.
	Stripes []*StripeGroup

	Tuples       int64
	SpilledPages int64
	SpilledBytes int64 // raw page bytes spilled
	WrittenBytes int64 // bytes written to the array (post compression)
	ParityBytes  int64 // parity blocks written (integrity overhead)
	// Fault-path counters: transient write errors recovered by retrying
	// and writes re-striped away from a failed device.
	SpillRetries   int64
	SpillFailovers int64

	SchemeHistogram map[codec.ID]int64
	// Self-regulating compression telemetry, merged over all threads'
	// regulators: total scheme transitions and the highest unified-scale
	// level any thread reached.
	RegLevelChanges int64
	RegMaxLevel     int

	// PartDistinct, when non-nil, holds per-partition distinct-key
	// estimates (indexed by partition) from the HLL sketches built during
	// materialization, so phase 2 can size each partition's hash table from
	// its real key cardinality instead of its tuple count (§4.4).
	PartDistinct []int64

	inMemByPart [][]*pages.Page
	released    bool
}

// ReleaseMemory returns the budget reservation of every in-memory page in
// the result. Operators register it as a query-end cleanup (exec.Ctx.Close)
// once the result's pages can no longer be read — so Budget.Used() returns
// to zero after every query instead of holding finished operators' pages
// until the GC collects them. Idempotent; the pages themselves stay valid
// (only the accounting changes).
func (r *Result) ReleaseMemory(budget *pages.Budget) {
	if r == nil || r.released {
		return
	}
	r.released = true
	for _, p := range r.InMemory {
		budget.Release(int64(p.Size()))
	}
	for _, p := range r.Unpartitioned {
		budget.Release(int64(p.Size()))
	}
}

// Finalize returns the merged result once every thread's buffer has called
// Finish. It returns the first spill error encountered, if any.
func (s *Shared) Finalize() (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.result.Mask = s.mask.Load()
	if s.result.SchemeHistogram == nil {
		s.result.SchemeHistogram = map[codec.ID]int64{}
	}
	return &s.result, s.firstErr
}

// InMemoryByPart returns the in-memory partitioned pages of partition p.
// Used with locality hints during hash table build (§5.3).
func (r *Result) InMemoryByPart(p int) []*pages.Page { return r.inMemByPart[p] }

// HasSpilled reports whether any partition spilled.
func (r *Result) HasSpilled() bool { return r.Mask != 0 }

// SpilledPartitions returns the indices of spilled partitions.
func (r *Result) SpilledPartitions() []int {
	var out []int
	for p := 0; p < r.Partitions; p++ {
		if r.Mask&(1<<uint(p)) != 0 {
			out = append(out, p)
		}
	}
	return out
}
