package core

import (
	"context"
	"fmt"

	"github.com/spilly-db/spilly/internal/codec"
	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/pages"
	"github.com/spilly-db/spilly/internal/uring"
)

// PartitionReader streams the spilled pages of one partition back from the
// NVMe array. It keeps several block reads in flight (asynchronous I/O,
// §5.1), decompresses staged pages, and yields them in completion order —
// hash-based phase-2 algorithms are order-insensitive.
//
// Transient read errors are retried with capped exponential backoff on the
// same device (spilled data has exactly one copy, so reads — unlike writes —
// cannot fail over). Permanent errors (a dead device, a corrupt slot) and
// an exhausted retry budget surface as a sticky structured QueryError.
// Cancellation through the context aborts the reader within one poll
// interval.
//
// Returned pages stay valid until Release is called; hash tables may point
// into them (§4.4 "operators can consume row-wise tuples directly"). Block
// and decompression buffers come from the pages recycler, and Release
// returns them — the consumer calls it only once nothing references the
// partition's tuples anymore (hash table dropped, every emitted string
// interned or copied). A reader that is never released simply leaves its
// buffers to the garbage collector.
type PartitionReader struct {
	ctx      context.Context // nil = never canceled
	ring     *uring.Ring
	clock    nvmesim.Clock
	pageSize int
	depth    int

	groups  []blockGroup
	next    int
	pending map[uint64]int // userData -> group index
	nextUD  uint64

	ready   []*pages.Page
	scratch []uring.Completion
	err     error
	done    bool

	bytesRead int64
	retries   int64

	// Integrity state (SetIntegrity): the partition frames are verified
	// against, the parity repairer, and the integrity counters.
	part            int // -1 = unknown
	rp              *repairer
	verified        int64
	checksumErrs    int64
	reconstructions int64

	owned    [][]byte // recycler-backed buffers the decoded pages alias
	released bool
}

type blockGroup struct {
	loc      nvmesim.Loc
	slots    []SpilledSlot
	buf      []byte
	attempts int
}

// DefaultReadDepth is the default number of concurrent block reads per
// partition reader. Spilled partitions are read back by several workers at
// once, so a moderate per-reader depth already saturates the array's
// aggregate queue depth (§5.2: NVMe arrays need parallel, deep queues).
const DefaultReadDepth = 8

// maxReadAttempts bounds transient-error retries per block read.
const maxReadAttempts = 4

// NewPartitionReader returns a reader over the given spilled slots (as
// recorded in a Result). ctx cancels blocking waits (nil = background).
// depth bounds concurrent block reads per reader (<= 0 selects
// DefaultReadDepth).
func NewPartitionReader(ctx context.Context, arr *nvmesim.Array, pageSize int, slots []SpilledSlot, depth int) *PartitionReader {
	if depth <= 0 {
		depth = DefaultReadDepth
	}
	ring := uring.New(arr)
	if ctx != nil {
		ring.SetCancel(func() bool { return ctx.Err() != nil })
	}
	r := &PartitionReader{
		ctx:      ctx,
		ring:     ring,
		clock:    arr.Clock(),
		pageSize: pageSize,
		depth:    depth,
		part:     -1,
		pending:  make(map[uint64]int),
	}
	// Group slots by staging block so each block is read exactly once.
	byLoc := make(map[nvmesim.Loc]int)
	for _, s := range slots {
		gi, ok := byLoc[s.Loc]
		if !ok {
			gi = len(r.groups)
			byLoc[s.Loc] = gi
			r.groups = append(r.groups, blockGroup{loc: s.Loc})
		}
		r.groups[gi].slots = append(r.groups[gi].slots, s)
	}
	return r
}

// BindIO routes the reader's block reads through the engine's shared
// dispatcher as demand-class I/O under the given query fairness key
// (nil = keep the private ring). Call before the first Next.
func (r *PartitionReader) BindIO(d uring.Dispatcher, query uint64) {
	r.ring.Bind(d, uring.ClassDemand, query)
}

// SetIntegrity arms frame verification and parity reconstruction: part is
// the partition this reader's slots belong to (-1 skips the partition
// check) and stripes is the result's parity stripe directory (nil = frames
// verify but nothing can be rebuilt). Call before the first Next.
func (r *PartitionReader) SetIntegrity(part int, stripes []*StripeGroup) {
	r.part = part
	r.rp = newRepairer(r.ctx, r.ring.Array(), stripes)
}

// Next returns the next spilled page, or (nil, nil) at end of partition.
func (r *PartitionReader) Next() (*pages.Page, error) {
	for {
		if r.err != nil {
			return nil, r.err
		}
		if r.ctx != nil && r.ctx.Err() != nil {
			r.err = WrapQueryError("spill-read", r.ctx.Err())
			return nil, r.err
		}
		if n := len(r.ready); n > 0 {
			p := r.ready[n-1]
			r.ready = r.ready[:n-1]
			return p, nil
		}
		if r.done {
			return nil, nil
		}
		r.fill()
		if len(r.pending) == 0 && r.next >= len(r.groups) {
			r.done = true
			continue
		}
		r.ring.Submit()
		r.scratch = r.ring.Poll(r.scratch[:0], true)
		for _, c := range r.scratch {
			gi, ok := r.pending[c.UserData]
			if !ok {
				continue
			}
			delete(r.pending, c.UserData)
			if c.Err != nil {
				if r.retryRead(c, gi) {
					continue
				}
				if err := r.completeGroup(&r.groups[gi], c.Err); err != nil {
					r.err = err
					break
				}
				continue
			}
			r.bytesRead += int64(c.N)
			if err := r.completeGroup(&r.groups[gi], nil); err != nil {
				r.err = err
				break
			}
		}
	}
}

// retryRead re-queues a failed block read when the error is transient and
// the group's retry budget allows it. Reads retry on the same device:
// spilled data has one primary copy, so a permanently failed device leaves
// only parity reconstruction (completeGroup) between the query and a fatal
// error.
func (r *PartitionReader) retryRead(c uring.Completion, gi int) bool {
	g := &r.groups[gi]
	if nvmesim.IsTransient(c.Err) && g.attempts+1 < maxReadAttempts {
		g.attempts++
		r.retries++
		r.clock.Sleep(retryBackoff(g.attempts))
		r.nextUD++
		r.ring.QueueRead(g.loc, g.buf, r.nextUD)
		r.pending[r.nextUD] = gi
		return true
	}
	return false
}

// fill tops up in-flight block reads to the configured depth.
func (r *PartitionReader) fill() {
	for r.next < len(r.groups) && len(r.pending) < r.depth {
		g := &r.groups[r.next]
		g.buf = pages.GetBuf(int(g.loc.Size()))
		r.owned = append(r.owned, g.buf)
		r.nextUD++
		r.ring.QueueRead(g.loc, g.buf, r.nextUD)
		r.pending[r.nextUD] = r.next
		r.next++
	}
}

// completeGroup turns a completed (or permanently failed) block read into
// pages. Every framed slot is verified before anything decodes; a checksum
// mismatch or a failed read triggers parity reconstruction in place, and
// only an unrepairable block surfaces an error — always a structured
// *QueryError naming device and partition.
func (r *PartitionReader) completeGroup(g *blockGroup, readErr error) error {
	if readErr != nil || countFramed(g.slots) > 0 {
		st, err := r.rp.validBlock(g.loc, g.buf, g.slots, r.part, readErr)
		r.verified += st.verified
		r.checksumErrs += st.checksumErrors
		r.reconstructions += st.reconstructions
		if err != nil {
			return err
		}
	}
	ready, owned, err := decodeBlockSlots(g.buf, g.slots, r.pageSize, r.ready, r.owned)
	r.ready, r.owned = ready, owned
	g.buf = nil // buffer ownership moved to r.owned; Release recycles it
	if err != nil {
		return WrapQueryError("spill-read", err)
	}
	return nil
}

// decodeBlockSlots decodes the staged pages of one completed block read,
// appending page views to ready and any decompression buffers it draws from
// the recycler to owned (the block buffer itself is assumed to be tracked by
// the caller already). Shared by PartitionReader and PartitionScheduler.
func decodeBlockSlots(buf []byte, slots []SpilledSlot, pageSize int, ready []*pages.Page, owned [][]byte) ([]*pages.Page, [][]byte, error) {
	for _, s := range slots {
		if int(s.Off)+int(s.Len) > len(buf) {
			return ready, owned, fmt.Errorf("core: spilled slot %v exceeds block bounds", s)
		}
		data := buf[s.Off : s.Off+s.Len]
		if s.Seq != 0 {
			// Framed slot: the extent starts with the (already verified)
			// integrity header; the encoded page follows it.
			if len(data) < pages.FrameSize {
				return ready, owned, fmt.Errorf("core: framed slot %v shorter than its header", s)
			}
			data = data[pages.FrameSize:]
		}
		var block []byte
		if s.Scheme == codec.None {
			block = data
		} else {
			c := codec.ByID(s.Scheme)
			if c == nil {
				return ready, owned, fmt.Errorf("core: spilled slot uses unknown codec %d", s.Scheme)
			}
			dec, err := c.Decompress(pages.GetBuf(pageSize)[:0], data)
			if err != nil {
				return ready, owned, fmt.Errorf("core: decompressing spilled page: %w", err)
			}
			block = dec
			owned = append(owned, dec[:cap(dec)])
		}
		p, err := pages.Load(block[:pageSize])
		if err != nil {
			return ready, owned, fmt.Errorf("core: loading spilled page: %w", err)
		}
		ready = append(ready, p)
	}
	return ready, owned, nil
}

// Release returns every buffer the decoded pages alias to the recycler.
// Call it only when the partition is fully consumed AND nothing points into
// its pages anymore — any hash table over them dropped, every emitted value
// copied or arena-interned. Safe to call more than once; the reader must
// not be used afterwards.
func (r *PartitionReader) Release() {
	if r.released {
		return
	}
	r.released = true
	r.ready = nil
	// A reader abandoned mid-stream (sticky error, early consumer exit)
	// still has block reads in flight whose DMA targets are in r.owned.
	// Drain them before recycling — handing a buffer to the recycler while
	// the device still writes into it would corrupt whoever gets it next.
	// If cancellation cut the drain short, leak the buffers to the GC
	// instead: safe, and the query is being torn down anyway.
	r.scratch = r.ring.WaitAll(r.scratch[:0])
	if r.ring.Outstanding() > 0 {
		// Reads the shared dispatcher never issued will not complete now;
		// drop them so its queues do not reference this query forever.
		r.ring.CancelDeferred()
		r.owned = nil
		return
	}
	for _, b := range r.owned {
		pages.PutBuf(b)
	}
	r.owned = nil
}

// BytesRead returns the bytes read from the array so far.
func (r *PartitionReader) BytesRead() int64 { return r.bytesRead }

// Retries returns the number of transient read errors recovered so far.
func (r *PartitionReader) Retries() int64 { return r.retries }

// Verified returns the framed pages whose checksums verified so far.
func (r *PartitionReader) Verified() int64 { return r.verified }

// ChecksumErrors returns the blocks that failed frame verification.
func (r *PartitionReader) ChecksumErrors() int64 { return r.checksumErrs }

// Reconstructions returns the blocks rebuilt from parity.
func (r *PartitionReader) Reconstructions() int64 { return r.reconstructions }

// ReadAll drains the reader into a slice (convenience for tests and small
// partitions).
func (r *PartitionReader) ReadAll() ([]*pages.Page, error) {
	var out []*pages.Page
	for {
		p, err := r.Next()
		if err != nil {
			return out, err
		}
		if p == nil {
			return out, nil
		}
		out = append(out, p)
	}
}
