package core

import "sync/atomic"

// MaxPartitions bounds the partition count so that the hybrid spill state
// fits one 64-bit mask, matching the paper's bitmap-based probe-side check
// (§4.3, §5.3).
const MaxPartitions = 64

// DefaultPartitionAt is the default fraction of the memory budget in use
// at which adaptive partitioning starts (§5.3: partitioning must begin
// while enough headroom remains to repartition resident data).
const DefaultPartitionAt = 0.5

// SpillMask tracks which partitions have been chosen for spilling, shared
// by all threads of an operator. The paper guards the bitmask with an
// optimistic lock: a thread picks a victim, then publishes it, scrapping
// its choice if another thread raced ahead (§5.3). A CAS loop implements
// exactly those optimistic semantics.
type SpillMask struct {
	mask atomic.Uint64
}

// Load returns the current spilled-partition bitmask.
func (m *SpillMask) Load() uint64 { return m.mask.Load() }

// IsSpilled reports whether partition p is marked for spilling.
func (m *SpillMask) IsSpilled(p int) bool {
	return m.mask.Load()&(1<<uint(p)) != 0
}

// Count returns the number of spilled partitions.
func (m *SpillMask) Count() int {
	n := 0
	v := m.mask.Load()
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

// Choose picks a partition to spill given the calling thread's local
// partition sizes in bytes. Threads prefer a partition some thread already
// chose (so the set of spilled partitions stays small — the hybrid
// heuristic), otherwise they nominate their largest local partition, as
// suggested by the HHJ literature the paper cites. The returned partition
// is guaranteed to be marked in the mask. ok is false when nothing can be
// chosen (no local data at all and nothing marked yet).
func (m *SpillMask) Choose(localSizes []int64) (part int, ok bool) {
	for {
		cur := m.mask.Load()
		// Prefer an already-spilled partition that this thread can
		// actually free local memory from.
		best, bestSize := -1, int64(0)
		if cur != 0 {
			for p, size := range localSizes {
				if size > 0 && cur&(1<<uint(p)) != 0 && size > bestSize {
					best, bestSize = p, size
				}
			}
			if best >= 0 {
				return best, true
			}
		}
		// Otherwise nominate the largest local partition.
		for p, size := range localSizes {
			if size > bestSize && cur&(1<<uint(p)) == 0 {
				best, bestSize = p, size
			}
		}
		if best < 0 {
			// Nothing local to offer; fall back to any marked partition.
			if cur != 0 {
				for p := 0; p < MaxPartitions; p++ {
					if cur&(1<<uint(p)) != 0 {
						return p, true
					}
				}
			}
			return -1, false
		}
		if m.mask.CompareAndSwap(cur, cur|1<<uint(best)) {
			return best, true
		}
		// Another thread updated the mask in the meantime: scrap the
		// choice and re-evaluate (optimistic concurrency).
	}
}

// MarkSpilled unconditionally marks partition p (used when a thread must
// spill the page it just filled).
func (m *SpillMask) MarkSpilled(p int) {
	for {
		cur := m.mask.Load()
		if m.mask.CompareAndSwap(cur, cur|1<<uint(p)) {
			return
		}
	}
}
