package core

import (
	"testing"
	"time"

	"github.com/spilly-db/spilly/internal/codec"
	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/pages"
	"github.com/spilly-db/spilly/internal/uring"
)

// spillOnePartition materializes tuples so that everything spills, and
// returns the array, page size and the slots of one spilled partition.
func spillOnePartition(t *testing.T, compress bool) (*nvmesim.Array, int, []SpilledSlot) {
	t.Helper()
	arr := fastArray(1)
	s := NewShared(Config{
		PageSize: 4096, Partitions: 4, Budget: pages.NewBudget(32 << 10), Mode: ModeSpillAll,
		Spill: &SpillConfig{Array: arr, Compress: compress, RunN: 4},
	})
	b := s.NewBuffer()
	storeN(b, 5000, 32, 0)
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < res.Partitions; p++ {
		if len(res.Spilled[p]) > 0 {
			return arr, 4096, res.Spilled[p]
		}
	}
	t.Fatal("nothing spilled")
	return nil, 0, nil
}

func TestPartitionReaderEmpty(t *testing.T) {
	arr := fastArray(1)
	r := NewPartitionReader(nil, arr, 4096, nil, 4)
	p, err := r.Next()
	if err != nil || p != nil {
		t.Fatalf("empty reader: %v %v", p, err)
	}
	// Next after end stays at end.
	if p, err := r.Next(); err != nil || p != nil {
		t.Fatal("reader did not stay at end")
	}
}

func TestPartitionReaderReadError(t *testing.T) {
	arr, pageSize, slots := spillOnePartition(t, false)
	arr.InjectFailures(0, 1000)
	r := NewPartitionReader(nil, arr, pageSize, slots, 4)
	if _, err := r.Next(); err == nil {
		t.Fatal("injected read failure not surfaced")
	}
	// The error is sticky.
	if _, err := r.Next(); err == nil {
		t.Fatal("reader forgot its error")
	}
}

func TestPartitionReaderCorruptSlot(t *testing.T) {
	arr, pageSize, slots := spillOnePartition(t, true)
	bad := make([]SpilledSlot, len(slots))
	copy(bad, slots)
	// Slot pointing past its block.
	bad[0].Off = uint32(bad[0].Loc.Size())
	bad[0].Len = 64
	r := NewPartitionReader(nil, arr, pageSize, bad, 4)
	failed := false
	for {
		p, err := r.Next()
		if err != nil {
			failed = true
			break
		}
		if p == nil {
			break
		}
	}
	if !failed {
		t.Fatal("out-of-bounds slot accepted")
	}
}

func TestPartitionReaderUnknownScheme(t *testing.T) {
	arr, pageSize, slots := spillOnePartition(t, true)
	bad := make([]SpilledSlot, len(slots))
	copy(bad, slots)
	bad[0].Scheme = codec.ID(250)
	r := NewPartitionReader(nil, arr, pageSize, bad, 4)
	failed := false
	for {
		p, err := r.Next()
		if err != nil {
			failed = true
			break
		}
		if p == nil {
			break
		}
	}
	if !failed {
		t.Fatal("unknown codec accepted")
	}
}

func TestPartitionReaderBytesRead(t *testing.T) {
	arr, pageSize, slots := spillOnePartition(t, false)
	r := NewPartitionReader(nil, arr, pageSize, slots, 2)
	pgs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pgs) == 0 || r.BytesRead() == 0 {
		t.Fatalf("pages=%d bytesRead=%d", len(pgs), r.BytesRead())
	}
}

func TestUringDepthAtSubmit(t *testing.T) {
	clk := nvmesim.NewVirtualClock(time.Unix(0, 0))
	arr := nvmesim.New(1, nvmesim.DeviceSpec{ReadBandwidth: 1e6, WriteBandwidth: 1e6, Latency: time.Millisecond}, clk)
	ring := uring.New(arr)
	for i := 0; i < 3; i++ {
		ring.QueueWrite(make([]byte, 512), uint64(i))
	}
	ring.Submit()
	comps := ring.WaitAll(nil)
	depths := map[int]bool{}
	for _, c := range comps {
		depths[c.DepthAtSubmit] = true
	}
	// Three requests submitted in one batch: depths 1, 2, 3.
	if !depths[1] || !depths[2] || !depths[3] {
		t.Fatalf("unexpected submit depths: %v", depths)
	}
}
