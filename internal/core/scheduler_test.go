package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/pages"
)

// spillAllPartitions materializes tuples under ModeSpillAll and returns the
// array, page size, result, and the work list over every spilled partition.
func spillAllPartitions(t *testing.T, compress bool) (arr *nvmesim.Array, pageSize int, res *Result, work []PartitionWork) {
	t.Helper()
	a := fastArray(2)
	s := NewShared(Config{
		PageSize: 4096, Partitions: 4, Budget: pages.NewBudget(32 << 10), Mode: ModeSpillAll,
		Spill: &SpillConfig{Array: a, Compress: compress, RunN: 4},
	})
	b := s.NewBuffer()
	storeN(b, 5000, 32, 0)
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	r, err := s.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < r.Partitions; p++ {
		if len(r.Spilled[p]) > 0 {
			work = append(work, PartitionWork{Part: p, Slots: r.Spilled[p]})
		}
	}
	if len(work) < 2 {
		t.Fatalf("only %d partitions spilled; the scheduler tests need lookahead targets", len(work))
	}
	return a, 4096, r, work
}

// drain pulls every page from a cursor, collecting the stored keys.
func drain(t *testing.T, cur PartitionCursor, into map[uint64]int) {
	t.Helper()
	for {
		p, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if p == nil {
			return
		}
		for i := 0; i < p.Tuples(); i++ {
			into[keyOf(p.Tuple(i))]++
		}
	}
}

func TestSchedulerStreamsAllPartitions(t *testing.T) {
	for _, compress := range []bool{false, true} {
		arr, pageSize, res, work := spillAllPartitions(t, compress)
		budget := pages.NewBudget(1 << 20)
		sched := NewPartitionScheduler(nil, arr, pageSize, work, 4, budget, false)
		got := map[uint64]int{}
		for _, p := range res.InMemory {
			for i := 0; i < p.Tuples(); i++ {
				got[keyOf(p.Tuple(i))]++
			}
		}
		for i := range work {
			cur := sched.Open(i)
			drain(t, cur, got)
			if cur.BytesRead() == 0 {
				t.Fatalf("compress=%v item %d: no bytes read", compress, i)
			}
			cur.Release()
		}
		sched.Close()
		checkAllKeys(t, got, 5000, 0)
		if used := budget.Used(); used != 0 {
			t.Fatalf("compress=%v: %d bytes of prefetch budget leaked", compress, used)
		}
	}
}

func TestSchedulerPrefetchesAhead(t *testing.T) {
	arr, pageSize, _, work := spillAllPartitions(t, true)
	budget := pages.NewBudget(1 << 20)
	sched := NewPartitionScheduler(nil, arr, pageSize, work, 8, budget, false)
	defer sched.Close()

	got := map[uint64]int{}
	first := sched.Open(0)
	drain(t, first, got)
	first.Release()

	// Pumping item 0 must have pushed later partitions' reads onto the ring:
	// every remaining open sees readback already under way.
	for i := 1; i < len(work); i++ {
		cur := sched.Open(i)
		if !cur.Prefetched() {
			t.Fatalf("item %d was not prefetched while item 0 was consumed", i)
		}
		drain(t, cur, got)
		cur.Release()
	}
	if n := sched.PrefetchedPartitions(); n != int64(len(work)-1) {
		t.Fatalf("PrefetchedPartitions = %d, want %d", n, len(work)-1)
	}
}

func TestSchedulerBudgetFloorUnderPressure(t *testing.T) {
	arr, pageSize, _, work := spillAllPartitions(t, true)
	// A budget with no headroom at all: every TryReserve fails, so lookahead
	// must shrink to the single unreserved in-flight block — not stop.
	budget := pages.NewBudget(1)
	sched := NewPartitionScheduler(nil, arr, pageSize, work, 8, budget, false)
	got := map[uint64]int{}
	for i := range work {
		cur := sched.Open(i)
		drain(t, cur, got)
		cur.Release()
	}
	if sched.PrefetchedPartitions() == 0 {
		t.Fatal("budget pressure disabled prefetch entirely; the floor should keep one block in flight")
	}
	sched.Close()
	if used := budget.Used(); used != 0 {
		t.Fatalf("%d bytes reserved after Close under a zero-headroom budget", used)
	}
}

func TestSchedulerReadErrorIsStructuredAndSticky(t *testing.T) {
	arr, pageSize, _, work := spillAllPartitions(t, false)
	arr.InjectFailures(0, 1000)
	arr.InjectFailures(1, 1000)
	budget := pages.NewBudget(1 << 20)
	sched := NewPartitionScheduler(nil, arr, pageSize, work, 4, budget, false)
	cur := sched.Open(0)
	_, err := cur.Next()
	if err == nil {
		t.Fatal("injected read failure not surfaced")
	}
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v (%T), want *QueryError", err, err)
	}
	if qe.Op != "spill-read" || qe.Part != work[0].Part {
		t.Fatalf("QueryError{Op: %q, Part: %d}, want {spill-read, %d}", qe.Op, qe.Part, work[0].Part)
	}
	if _, err2 := cur.Next(); err2 == nil {
		t.Fatal("cursor forgot its error")
	}
	cur.Release()
	sched.Close()
	if used := budget.Used(); used != 0 {
		t.Fatalf("%d bytes reserved after failed readback", used)
	}
}

func TestSchedulerDeviceDeathMidPrefetch(t *testing.T) {
	arr, pageSize, _, work := spillAllPartitions(t, false)
	budget := pages.NewBudget(1 << 20)
	// Depth 1 keeps most of the readback unsubmitted while the first
	// partition drains, so the kill lands on reads the scheduler still has
	// queued — the prefetch-in-progress shape.
	sched := NewPartitionScheduler(nil, arr, pageSize, work, 1, budget, false)

	// Drain the first partition so prefetch for the rest is in flight, then
	// kill both devices: later partitions must fail with structured errors
	// naming a device — never hang or return partial pages as success.
	got := map[uint64]int{}
	cur := sched.Open(0)
	drain(t, cur, got)
	cur.Release()
	arr.KillDevice(0)
	arr.KillDevice(1)

	sawError := false
	for i := 1; i < len(work); i++ {
		c := sched.Open(i)
		for {
			p, err := c.Next()
			if err != nil {
				var qe *QueryError
				if !errors.As(err, &qe) {
					t.Fatalf("item %d: err = %v (%T), want *QueryError", i, err, err)
				}
				if qe.Device != 0 && qe.Device != 1 {
					t.Fatalf("item %d: QueryError.Device = %d, want a real device", i, qe.Device)
				}
				sawError = true
				break
			}
			if p == nil {
				break // reads completed before the kill; legal
			}
		}
		c.Release()
	}
	if !sawError {
		t.Skip("every prefetched read completed before the kill at this scale")
	}
	sched.Close()
	if used := budget.Used(); used != 0 {
		t.Fatalf("%d bytes reserved after mid-prefetch device death", used)
	}
}

func TestSchedulerCanceledContext(t *testing.T) {
	arr, pageSize, _, work := spillAllPartitions(t, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sched := NewPartitionScheduler(ctx, arr, pageSize, work, 4, nil, false)
	cur := sched.Open(0)
	if _, err := cur.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	cur.Release()
	sched.Close()
}

func TestSchedulerCloseWithoutOpen(t *testing.T) {
	arr, pageSize, _, work := spillAllPartitions(t, true)
	budget := pages.NewBudget(1 << 20)
	sched := NewPartitionScheduler(nil, arr, pageSize, work, 8, budget, false)
	// Force prefetch to start without any consumer: open and drop one page.
	cur := sched.Open(0)
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}
	// Abandon everything mid-stream — the error-path shape. Close must
	// drain the ring and return every reservation and buffer.
	sched.Close()
	sched.Close() // idempotent
	if used := budget.Used(); used != 0 {
		t.Fatalf("%d bytes reserved after abandoning mid-stream", used)
	}
}

func TestSchedulerBlockingModeMatches(t *testing.T) {
	arr, pageSize, res, work := spillAllPartitions(t, true)
	sched := NewPartitionScheduler(nil, arr, pageSize, work, 4, nil, true)
	got := map[uint64]int{}
	for _, p := range res.InMemory {
		for i := 0; i < p.Tuples(); i++ {
			got[keyOf(p.Tuple(i))]++
		}
	}
	for i := range work {
		cur := sched.Open(i)
		if cur.Prefetched() {
			t.Fatal("blocking cursor claims prefetch")
		}
		drain(t, cur, got)
		if cur.StallNanos() == 0 {
			t.Fatal("blocking cursor recorded no stall time")
		}
		cur.Release()
	}
	sched.Close()
	checkAllKeys(t, got, 5000, 0)
	if sched.PrefetchedPartitions() != 0 {
		t.Fatal("blocking scheduler reports prefetched partitions")
	}
}

func TestSchedulerConcurrentConsumers(t *testing.T) {
	arr, pageSize, _, work := spillAllPartitions(t, true)
	budget := pages.NewBudget(1 << 20)
	sched := NewPartitionScheduler(nil, arr, pageSize, work, 4, budget, false)
	var mu sync.Mutex
	got := map[uint64]int{}
	var wg sync.WaitGroup
	for i := range work {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cur := sched.Open(i)
			local := map[uint64]int{}
			for {
				p, err := cur.Next()
				if err != nil {
					t.Error(err)
					break
				}
				if p == nil {
					break
				}
				for k := 0; k < p.Tuples(); k++ {
					local[keyOf(p.Tuple(k))]++
				}
			}
			cur.Release()
			mu.Lock()
			for k, v := range local {
				got[k] += v
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	sched.Close()
	if used := budget.Used(); used != 0 {
		t.Fatalf("%d bytes of prefetch budget leaked", used)
	}
	// Every spilled key exactly once (in-memory pages not drained here).
	for k, v := range got {
		if v != 1 {
			t.Fatalf("key %d read %d times", k, v)
		}
	}
}
