package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/spilly-db/spilly/internal/codec"
	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/pages"
	"github.com/spilly-db/spilly/internal/uring"
)

// SpilledSlot locates one spilled page: the staging block it lives in and
// its extent within that block. The paper serializes [offset, size, scheme]
// slot directories into the staging areas themselves (§5.3); since spilled
// data is ephemeral — it never outlives the query — this reproduction keeps
// the directory in memory alongside the paper's in-memory
// spilledPageLocations list, which is equivalent and avoids re-parsing.
type SpilledSlot struct {
	Loc    nvmesim.Loc // staging block location on the array
	Off    uint32      // offset of the encoded page within the block
	Len    uint32      // encoded length (frame included when Seq != 0)
	Scheme codec.ID    // codec used, None = raw page bytes
	// Seq is the page's engine-unique integrity sequence number; 0 means
	// the page was written without an integrity frame. When set, the
	// extent holds a pages.FrameSize header followed by the encoded page,
	// and readback verifies the frame before decoding.
	Seq uint32
}

// stagingArea accumulates compressed pages destined for one partition until
// it holds at least the flush threshold, so that compression output — which
// shrinks below the page size — still produces large, block-aligned writes
// (paper §5.3, Figure 4).
type stagingArea struct {
	buf   []byte
	slots []SpilledSlot // Loc filled in at flush time
}

// inflightWrite tracks one write request from queueing until its buffer can
// be reclaimed, carrying everything recovery needs: the bytes on the wire
// (for retries), the buffer to return (page or staging buffer), and the
// slot-directory range whose Loc must be re-pointed when a retry lands on a
// different location.
type inflightWrite struct {
	page     *pages.Page // raw-path page to recycle (nil on the staged path)
	buf      []byte      // staged-path staging buffer (nil on the raw path)
	data     []byte      // bytes being written; valid until release
	part     int
	slotFrom int // w.slots[part][slotFrom:slotTo] reference this write's Loc
	slotTo   int
	attempts int // transient-failure retries so far
	// Parity bookkeeping: when the write belongs to a stripe group, a
	// failover relocation must re-point the group's directory too.
	// stripeIdx is the member index, or -1 for the group's parity block.
	stripe    *StripeGroup
	stripeIdx int
}

// Write-retry policy: transient device errors are retried with capped
// exponential backoff; a permanent device failure triggers failover (the
// ring re-stripes onto surviving devices) without consuming the retry
// budget.
const (
	maxWriteAttempts = 4
	retryBackoffBase = 50 * time.Microsecond
	retryBackoffMax  = 2 * time.Millisecond
)

// retryBackoff returns the backoff before retry number attempt (1-based).
func retryBackoff(attempt int) time.Duration {
	d := retryBackoffBase << uint(attempt-1)
	if d > retryBackoffMax {
		d = retryBackoffMax
	}
	return d
}

// spillWriter performs asynchronous, optionally compressed page spilling
// for one worker thread (paper Listing 2). It owns the thread's I/O ring.
//
// Fault handling: completions with transient errors are retried (same data,
// fresh allocation — possibly on another device) with capped exponential
// backoff; permanent device failures fail over to the surviving devices;
// fatal errors (retry budget exhausted, no writable device left) record a
// structured QueryError and switch the writer into fast-fail mode, where
// further pages are recycled instead of written. Buffers are returned to
// their pools on every path, including cancellation.
type spillWriter struct {
	ring     *uring.Ring
	clock    nvmesim.Clock
	ctx      context.Context // nil = never canceled
	reg      *Regulator      // nil: spill raw pages without the compression path
	stage    bool            // route pages through staging areas
	pool     *pages.Pool
	parts    int
	flushAt  int // staging flush threshold in bytes (>= one device block)
	maxAhead int // bound on in-flight write requests per thread

	staging     []*stagingArea // per partition, lazily allocated
	stagingFree [][]byte

	inflight map[uint64]*inflightWrite
	nextUD   uint64

	slots [][]SpilledSlot // per partition

	// Integrity state (SpillConfig.Parity > 0): every payload is framed
	// with a checksum header, and every `parity` staging-block writes form
	// a stripe group closed by an XOR parity block write.
	parity    int            // stripe width K; 0 = integrity off
	seqc      *atomic.Uint32 // shared engine-unique frame sequence counter
	curStripe *StripeGroup   // open group collecting members
	parityAcc []byte         // XOR accumulator over the open group's blocks
	stripes   []*StripeGroup // all groups this writer produced

	// Counters.
	spilledPages int64
	spilledBytes int64 // raw page bytes spilled
	writtenBytes int64 // bytes handed to the device (post compression)
	parityBytes  int64 // parity blocks written (integrity overhead)
	retries      int64 // transient write errors recovered by retrying
	failovers    int64 // writes re-striped onto a different device
	firstErr     error
	scratch      []uring.Completion
}

func newSpillWriter(ctx context.Context, ring *uring.Ring, reg *Regulator, pool *pages.Pool, parts, flushAt, maxAhead, parity int, seqc *atomic.Uint32) *spillWriter {
	if flushAt < nvmesim.BlockSize {
		flushAt = pages.DefaultPageSize
	}
	if maxAhead <= 0 {
		maxAhead = 32
	}
	w := &spillWriter{
		ring:  ring,
		clock: ring.Array().Clock(),
		ctx:   ctx,
		reg:   reg,
		// Staging batches small or compressed pages into >= flushAt
		// writes (§5.3). Full-size raw pages skip the copy and go out
		// directly — unless integrity is on, which frames every payload
		// and therefore always routes through staging.
		stage:    reg != nil || pool.PageSize() < flushAt || parity > 0,
		pool:     pool,
		parts:    parts,
		flushAt:  flushAt,
		maxAhead: maxAhead,
		parity:   parity,
		seqc:     seqc,
		staging:  make([]*stagingArea, parts),
		inflight: make(map[uint64]*inflightWrite),
		slots:    make([][]SpilledSlot, parts),
	}
	if ctx != nil {
		ring.SetCancel(func() bool { return ctx.Err() != nil })
	}
	return w
}

// canceled reports whether the query's context has been canceled.
func (w *spillWriter) canceled() bool {
	return w.ctx != nil && w.ctx.Err() != nil
}

// spillPage queues page p (belonging to partition p.Part) for writing. With
// compression active, the page's bytes move into a staging area and the
// page itself is immediately recycled; without compression the page buffer
// is owned by the I/O ring until the write completes. After a fatal spill
// error the page is recycled without I/O — the query is failing; what
// matters is that no buffer leaks.
func (w *spillWriter) spillPage(p *pages.Page) {
	part := p.Part
	if part < 0 || part >= w.parts {
		panic(fmt.Sprintf("core: spilling page of invalid partition %d", part))
	}
	if w.firstErr != nil || w.canceled() {
		w.pool.Put(p)
		return
	}
	raw := p.Seal()
	w.spilledPages++
	w.spilledBytes += int64(len(raw))

	if !w.stage {
		ud := w.newUD()
		loc, err := w.ring.QueueWrite(raw, ud)
		if err != nil {
			w.fail(err)
			w.pool.Put(p)
			return
		}
		slotIdx := len(w.slots[part])
		w.slots[part] = append(w.slots[part], SpilledSlot{Loc: loc, Off: 0, Len: uint32(len(raw)), Scheme: codec.None})
		w.inflight[ud] = &inflightWrite{page: p, data: raw, part: part, slotFrom: slotIdx, slotTo: slotIdx + 1}
		w.writtenBytes += int64(len(raw))
		w.pump()
		return
	}

	enc, scheme := raw, codec.None
	if w.reg != nil {
		enc, scheme = w.reg.CompressPage(raw)
	}
	st := w.staging[part]
	if st == nil {
		st = &stagingArea{buf: w.getStagingBuf()}
		w.staging[part] = st
	}
	if w.parity > 0 {
		// Integrity frame: checksum header + payload; the slot records the
		// sequence number readback verifies against.
		seq := w.seqc.Add(1)
		st.slots = append(st.slots, SpilledSlot{
			Off: uint32(len(st.buf)), Len: uint32(pages.FrameSize + len(enc)),
			Scheme: scheme, Seq: seq,
		})
		st.buf = pages.AppendFrame(st.buf, part, seq, enc)
	} else {
		st.slots = append(st.slots, SpilledSlot{Off: uint32(len(st.buf)), Len: uint32(len(enc)), Scheme: scheme})
		st.buf = append(st.buf, enc...)
	}
	w.pool.Put(p)
	if len(st.buf) >= w.flushAt {
		w.flushStaging(part)
	}
	w.pump()
}

// flushStaging writes out partition part's staging area, if any.
func (w *spillWriter) flushStaging(part int) {
	st := w.staging[part]
	if st == nil || len(st.buf) == 0 {
		return
	}
	w.staging[part] = nil
	if w.firstErr != nil || w.canceled() {
		w.putStagingBuf(st.buf)
		return
	}
	ud := w.newUD()
	loc, err := w.ring.QueueWrite(st.buf, ud)
	if err != nil {
		w.fail(err)
		w.putStagingBuf(st.buf)
		return
	}
	slotFrom := len(w.slots[part])
	for _, s := range st.slots {
		s.Loc = loc
		w.slots[part] = append(w.slots[part], s)
	}
	rec := &inflightWrite{buf: st.buf, data: st.buf, part: part, slotFrom: slotFrom, slotTo: len(w.slots[part]), stripeIdx: -1}
	if w.parity > 0 {
		w.addStripeMember(rec, loc, st.buf)
	}
	w.inflight[ud] = rec
	w.writtenBytes += int64(len(st.buf))
}

// addStripeMember folds a just-queued staging block into the open stripe
// group, closing the group with a parity write once it holds `parity`
// members. Consecutive QueueWrites round-robin across live devices, so the
// group's members and parity land on distinct devices whenever the array
// has at least parity+1 of them.
func (w *spillWriter) addStripeMember(rec *inflightWrite, loc nvmesim.Loc, data []byte) {
	if w.curStripe == nil {
		w.curStripe = &StripeGroup{Data: make([]nvmesim.Loc, 0, w.parity)}
		w.parityAcc = w.getStagingBuf()
	}
	g := w.curStripe
	rec.stripe = g
	rec.stripeIdx = len(g.Data)
	g.Data = append(g.Data, loc)
	if len(data) > len(w.parityAcc) {
		w.parityAcc = append(w.parityAcc, make([]byte, len(data)-len(w.parityAcc))...)
	}
	xorInto(w.parityAcc, data)
	if len(g.Data) >= w.parity {
		w.sealStripe()
	}
}

// sealStripe writes the open stripe group's parity block and records the
// group in the writer's stripe directory. Called when the group is full and
// at finish() for a trailing partial group.
func (w *spillWriter) sealStripe() {
	g, acc := w.curStripe, w.parityAcc
	w.curStripe, w.parityAcc = nil, nil
	if g == nil || len(g.Data) == 0 {
		if acc != nil {
			w.putStagingBuf(acc)
		}
		return
	}
	w.stripes = append(w.stripes, g)
	if w.firstErr != nil || w.canceled() {
		w.putStagingBuf(acc)
		return
	}
	ud := w.newUD()
	loc, err := w.ring.QueueWrite(acc, ud)
	if err != nil {
		// No writable device for the parity block: the group simply has no
		// parity (Parity stays 0). Data writes already queued are intact,
		// so this alone does not fail the query — but with every device
		// dead or full those writes are failing too.
		w.putStagingBuf(acc)
		return
	}
	g.Parity = loc
	w.inflight[ud] = &inflightWrite{buf: acc, data: acc, part: -1, stripe: g, stripeIdx: -1}
	w.parityBytes += int64(len(acc))
}

// pump submits queued requests and reaps completions, blocking only when
// too many writes are in flight (bounding memory, per Listing 2).
func (w *spillWriter) pump() {
	w.ring.Submit()
	w.drain(len(w.inflight) >= w.maxAhead)
}

// drain reaps completions; if block is true it waits for at least one.
// Failed completions are retried or failed over in place; a canceled
// context aborts and reclaims every in-flight buffer.
func (w *spillWriter) drain(block bool) {
	if w.canceled() {
		w.abort(w.ctx.Err())
		return
	}
	if w.ring.Outstanding() == 0 {
		return
	}
	w.scratch = w.ring.Poll(w.scratch[:0], block)
	if w.canceled() {
		w.abort(w.ctx.Err())
		return
	}
	for _, c := range w.scratch {
		rec, ok := w.inflight[c.UserData]
		if !ok {
			continue
		}
		if w.reg != nil && c.Err == nil {
			// Estimate the parallelism the request's latency was shared
			// across as the mean of submit-time and reap-time depth.
			w.reg.ObserveIO(c, (c.DepthAtSubmit+w.ring.Outstanding()+1)/2)
		}
		delete(w.inflight, c.UserData)
		if c.Err != nil {
			w.recoverWrite(c, rec)
			continue
		}
		w.release(rec)
	}
}

// recoverWrite handles one failed write completion: retry transient errors
// with backoff, fail over from dead devices, and fail the query (releasing
// the buffer) when recovery is impossible.
func (w *spillWriter) recoverWrite(c uring.Completion, rec *inflightWrite) {
	transient := nvmesim.IsTransient(c.Err)
	dead := nvmesim.IsDeviceDead(c.Err)
	if dead {
		// Permanent failure: re-stripe onto the survivors. This is
		// failover, not a retry — it does not consume the retry budget.
		w.requeue(c, rec)
		return
	}
	if transient && rec.attempts+1 < maxWriteAttempts {
		rec.attempts++
		w.retries++
		w.clock.Sleep(retryBackoff(rec.attempts))
		w.requeue(c, rec)
		return
	}
	w.failWrite(c, rec, c.Err)
}

// requeue re-submits rec's data through the ring (which skips dead devices)
// and re-points the slot directory at the new location.
func (w *spillWriter) requeue(c uring.Completion, rec *inflightWrite) {
	ud := w.newUD()
	loc, err := w.ring.QueueWrite(rec.data, ud)
	if err != nil {
		// No writable device left (all dead or full): fatal.
		w.failWrite(c, rec, err)
		return
	}
	if loc.Device() != c.Loc.Device() {
		w.failovers++
	}
	for i := rec.slotFrom; i < rec.slotTo; i++ {
		w.slots[rec.part][i].Loc = loc
	}
	// Keep the stripe directory pointing at the data's final home.
	if g := rec.stripe; g != nil {
		if rec.stripeIdx >= 0 {
			g.Data[rec.stripeIdx] = loc
		} else {
			g.Parity = loc
		}
	}
	w.inflight[ud] = rec
}

// failWrite records a fatal, structured spill failure and reclaims the
// write's buffer. A failed parity write degrades instead: the group loses
// its redundancy (Parity = 0) but the data blocks are unaffected, so the
// query keeps running.
func (w *spillWriter) failWrite(c uring.Completion, rec *inflightWrite, err error) {
	if g := rec.stripe; g != nil && rec.stripeIdx < 0 {
		g.Parity = 0
		w.parityBytes -= int64(len(rec.data))
		w.release(rec)
		return
	}
	if w.firstErr == nil {
		qe := &QueryError{Op: "spill", Part: rec.part, Device: c.Loc.Device(), Err: err}
		var de *nvmesim.DeviceError
		if errors.As(err, &de) {
			qe.Device = de.Device
		}
		if errors.Is(err, nvmesim.ErrDeviceFull) {
			qe.Hint = HintDeviceFull
		}
		w.firstErr = qe
	}
	w.release(rec)
}

// release returns a completed (or abandoned) write's buffer to its pool.
func (w *spillWriter) release(rec *inflightWrite) {
	if rec.page != nil {
		w.pool.Put(rec.page)
	} else if rec.buf != nil {
		w.putStagingBuf(rec.buf)
	}
}

// abort reclaims every buffer the writer still tracks and records cause as
// the writer's error. The simulated array copies data at submission, so
// in-flight buffers are safe to reuse immediately; on real hardware this
// would first quiesce the DMA engine (io_uring cancel + wait).
func (w *spillWriter) abort(cause error) {
	// Writes the shared dispatcher is still holding deferred reference the
	// staging buffers released below — cancel them before recycling.
	w.ring.CancelDeferred()
	for ud, rec := range w.inflight {
		delete(w.inflight, ud)
		w.release(rec)
	}
	for part, st := range w.staging {
		if st != nil {
			w.putStagingBuf(st.buf)
			w.staging[part] = nil
		}
	}
	if w.parityAcc != nil {
		w.putStagingBuf(w.parityAcc)
		w.parityAcc = nil
		w.curStripe = nil
	}
	if cause != nil {
		w.fail(cause)
	}
}

// finish flushes all staging areas and drains every outstanding write —
// including retries queued during the drain — returning buffers to the pool
// on every path. It returns the writer's first fatal error.
func (w *spillWriter) finish() error {
	for part := range w.staging {
		w.flushStaging(part)
	}
	// A trailing partial stripe group still gets its parity block — the
	// last blocks written are as exposed to device loss as any other.
	w.sealStripe()
	for w.ring.Pending() > 0 || w.ring.Outstanding() > 0 {
		if w.canceled() {
			w.abort(w.ctx.Err())
			break
		}
		w.ring.Submit()
		w.drain(true)
	}
	// Final sweep: nothing should remain tracked, but a leaked buffer is
	// strictly worse than a redundant pass. A canceled context must also
	// surface here even when no I/O is left outstanding — pages handed to
	// spillPage after cancellation were recycled without being written,
	// so reporting success would silently drop them.
	if w.canceled() {
		w.abort(w.ctx.Err())
	} else {
		w.abort(nil)
	}
	return w.firstErr
}

func (w *spillWriter) newUD() uint64 {
	w.nextUD++
	return w.nextUD
}

func (w *spillWriter) fail(err error) {
	if w.firstErr == nil {
		w.firstErr = WrapQueryError("spill", err)
	}
}

func (w *spillWriter) getStagingBuf() []byte {
	if n := len(w.stagingFree); n > 0 {
		b := w.stagingFree[n-1]
		w.stagingFree = w.stagingFree[:n-1]
		return b[:0]
	}
	return make([]byte, 0, w.flushAt+pages.DefaultPageSize)
}

func (w *spillWriter) putStagingBuf(b []byte) {
	if len(w.stagingFree) < 8 {
		w.stagingFree = append(w.stagingFree, b)
	}
}
