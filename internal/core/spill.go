package core

import (
	"fmt"

	"github.com/spilly-db/spilly/internal/codec"
	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/pages"
	"github.com/spilly-db/spilly/internal/uring"
)

// SpilledSlot locates one spilled page: the staging block it lives in and
// its extent within that block. The paper serializes [offset, size, scheme]
// slot directories into the staging areas themselves (§5.3); since spilled
// data is ephemeral — it never outlives the query — this reproduction keeps
// the directory in memory alongside the paper's in-memory
// spilledPageLocations list, which is equivalent and avoids re-parsing.
type SpilledSlot struct {
	Loc    nvmesim.Loc // staging block location on the array
	Off    uint32      // offset of the encoded page within the block
	Len    uint32      // encoded length
	Scheme codec.ID    // codec used, None = raw page bytes
}

// stagingArea accumulates compressed pages destined for one partition until
// it holds at least the flush threshold, so that compression output — which
// shrinks below the page size — still produces large, block-aligned writes
// (paper §5.3, Figure 4).
type stagingArea struct {
	buf   []byte
	slots []SpilledSlot // Loc filled in at flush time
}

// spillWriter performs asynchronous, optionally compressed page spilling
// for one worker thread (paper Listing 2). It owns the thread's I/O ring.
type spillWriter struct {
	ring     *uring.Ring
	reg      *Regulator // nil: spill raw pages without the compression path
	stage    bool       // route pages through staging areas
	pool     *pages.Pool
	parts    int
	flushAt  int // staging flush threshold in bytes (>= one device block)
	maxAhead int // bound on in-flight write requests per thread

	staging     []*stagingArea // per partition, lazily allocated
	stagingFree [][]byte

	inflightPages   map[uint64]*pages.Page
	inflightStaging map[uint64][]byte
	nextUD          uint64

	slots [][]SpilledSlot // per partition

	// Counters.
	spilledPages    int64
	spilledBytes    int64 // raw page bytes spilled
	writtenBytes    int64 // bytes handed to the device (post compression)
	firstErr        error
	scratch         []uring.Completion
}

func newSpillWriter(ring *uring.Ring, reg *Regulator, pool *pages.Pool, parts, flushAt, maxAhead int) *spillWriter {
	if flushAt < nvmesim.BlockSize {
		flushAt = pages.DefaultPageSize
	}
	if maxAhead <= 0 {
		maxAhead = 32
	}
	return &spillWriter{
		ring: ring,
		reg:  reg,
		// Staging batches small or compressed pages into >= flushAt
		// writes (§5.3). Full-size raw pages skip the copy and go out
		// directly.
		stage:           reg != nil || pool.PageSize() < flushAt,
		pool:            pool,
		parts:           parts,
		flushAt:         flushAt,
		maxAhead:        maxAhead,
		staging:         make([]*stagingArea, parts),
		inflightPages:   make(map[uint64]*pages.Page),
		inflightStaging: make(map[uint64][]byte),
		slots:           make([][]SpilledSlot, parts),
	}
}

// spillPage queues page p (belonging to partition p.Part) for writing. With
// compression active, the page's bytes move into a staging area and the
// page itself is immediately recycled; without compression the page buffer
// is owned by the I/O ring until the write completes.
func (w *spillWriter) spillPage(p *pages.Page) {
	part := p.Part
	if part < 0 || part >= w.parts {
		panic(fmt.Sprintf("core: spilling page of invalid partition %d", part))
	}
	raw := p.Seal()
	w.spilledPages++
	w.spilledBytes += int64(len(raw))

	if !w.stage {
		ud := w.newUD()
		loc, err := w.ring.QueueWrite(raw, ud)
		if err != nil {
			w.fail(err)
			w.pool.Put(p)
			return
		}
		w.inflightPages[ud] = p
		w.slots[part] = append(w.slots[part], SpilledSlot{Loc: loc, Off: 0, Len: uint32(len(raw)), Scheme: codec.None})
		w.writtenBytes += int64(len(raw))
		w.pump()
		return
	}

	enc, scheme := raw, codec.None
	if w.reg != nil {
		enc, scheme = w.reg.CompressPage(raw)
	}
	st := w.staging[part]
	if st == nil {
		st = &stagingArea{buf: w.getStagingBuf()}
		w.staging[part] = st
	}
	st.slots = append(st.slots, SpilledSlot{Off: uint32(len(st.buf)), Len: uint32(len(enc)), Scheme: scheme})
	st.buf = append(st.buf, enc...)
	w.pool.Put(p)
	if len(st.buf) >= w.flushAt {
		w.flushStaging(part)
	}
	w.pump()
}

// flushStaging writes out partition part's staging area, if any.
func (w *spillWriter) flushStaging(part int) {
	st := w.staging[part]
	if st == nil || len(st.buf) == 0 {
		return
	}
	w.staging[part] = nil
	ud := w.newUD()
	loc, err := w.ring.QueueWrite(st.buf, ud)
	if err != nil {
		w.fail(err)
		return
	}
	w.inflightStaging[ud] = st.buf
	for _, s := range st.slots {
		s.Loc = loc
		w.slots[part] = append(w.slots[part], s)
	}
	w.writtenBytes += int64(len(st.buf))
}

// pump submits queued requests and reaps completions, blocking only when
// too many writes are in flight (bounding memory, per Listing 2).
func (w *spillWriter) pump() {
	w.ring.Submit()
	w.drain(w.ring.Outstanding() >= w.maxAhead)
}

// drain reaps completions; if block is true it waits for at least one.
func (w *spillWriter) drain(block bool) {
	if w.ring.Outstanding() == 0 {
		return
	}
	w.scratch = w.ring.Poll(w.scratch[:0], block)
	for _, c := range w.scratch {
		if c.Err != nil {
			w.fail(c.Err)
		}
		if w.reg != nil {
			// Estimate the parallelism the request's latency was shared
			// across as the mean of submit-time and reap-time depth.
			w.reg.ObserveIO(c, (c.DepthAtSubmit+w.ring.Outstanding()+1)/2)
		}
		if p, ok := w.inflightPages[c.UserData]; ok {
			delete(w.inflightPages, c.UserData)
			w.pool.Put(p)
			continue
		}
		if buf, ok := w.inflightStaging[c.UserData]; ok {
			delete(w.inflightStaging, c.UserData)
			w.putStagingBuf(buf)
		}
	}
}

// finish flushes all staging areas and waits for every outstanding write.
func (w *spillWriter) finish() error {
	for part := range w.staging {
		w.flushStaging(part)
	}
	w.ring.Submit()
	for w.ring.Outstanding() > 0 {
		w.drain(true)
	}
	return w.firstErr
}

func (w *spillWriter) newUD() uint64 {
	w.nextUD++
	return w.nextUD
}

func (w *spillWriter) fail(err error) {
	if w.firstErr == nil {
		w.firstErr = err
	}
}

func (w *spillWriter) getStagingBuf() []byte {
	if n := len(w.stagingFree); n > 0 {
		b := w.stagingFree[n-1]
		w.stagingFree = w.stagingFree[:n-1]
		return b[:0]
	}
	return make([]byte, 0, w.flushAt+pages.DefaultPageSize)
}

func (w *spillWriter) putStagingBuf(b []byte) {
	if len(w.stagingFree) < 8 {
		w.stagingFree = append(w.stagingFree, b)
	}
}
