package core

import (
	"context"
	"fmt"

	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/pages"
	"github.com/spilly-db/spilly/internal/uring"
)

// Spill integrity: XOR parity stripes and reconstruct-on-read.
//
// With SpillConfig.Parity = K > 0, every spill payload is wrapped in a
// checksummed frame (pages.AppendFrame) and every K consecutive staging
// block writes from one writer form a stripe group: the writer XORs the K
// blocks together (zero-padded to the longest) and writes the result as a
// K+1th parity block. The ring round-robins consecutive writes across live
// devices, so a group's K+1 blocks land on distinct devices whenever
// K+1 <= live devices — losing any one device costs at most one block per
// group, and that block is rebuilt from the survivors.
//
// On readback, a frame that fails verification (bit rot, torn write,
// misdirected read) or a block read that fails permanently (dead device)
// triggers reconstruction: read the group's surviving K-1 data blocks and
// its parity, XOR them, and re-verify the frames of the rebuilt block. Only
// a second fault inside the same group — or damage to a block that was
// never striped — makes the error fatal, and then it surfaces as a
// structured *QueryError naming the device and partition.

// StripeGroup records one parity stripe: the data block locations and the
// location of their XOR parity block. A zero Parity means the parity write
// never completed (the query is already failing); such a group cannot
// repair anything.
type StripeGroup struct {
	Data   []nvmesim.Loc
	Parity nvmesim.Loc
}

// buildStripeIndex maps every data block location to its stripe group.
func buildStripeIndex(stripes []*StripeGroup) map[nvmesim.Loc]*StripeGroup {
	if len(stripes) == 0 {
		return nil
	}
	idx := make(map[nvmesim.Loc]*StripeGroup, len(stripes)*2)
	for _, g := range stripes {
		for _, loc := range g.Data {
			idx[loc] = g
		}
	}
	return idx
}

// xorInto XORs src into dst[:len(src)]. dst must be at least as long.
func xorInto(dst, src []byte) {
	for i, b := range src {
		dst[i] ^= b
	}
}

// repairer rebuilds lost or corrupt spill blocks from their stripe group.
// It owns a private ring for the recovery reads — reconstruction is a cold
// path; keeping it off the readback ring means no interference with the
// prefetch pipeline's in-flight requests. Not safe for concurrent use;
// each reader (or the scheduler, under its lock) owns one.
type repairer struct {
	ctx     context.Context
	arr     *nvmesim.Array
	byLoc   map[nvmesim.Loc]*StripeGroup
	ring    *uring.Ring
	scratch []uring.Completion
}

func newRepairer(ctx context.Context, arr *nvmesim.Array, stripes []*StripeGroup) *repairer {
	return &repairer{ctx: ctx, arr: arr, byLoc: buildStripeIndex(stripes)}
}

// enabled reports whether the repairer has any stripe directory at all.
func (rp *repairer) enabled() bool { return rp != nil && len(rp.byLoc) > 0 }

// vstats counts the integrity work of one block validation.
type vstats struct {
	verified        int64 // framed pages whose checksums verified
	checksumErrors  int64 // framed pages (blocks) that failed verification
	reconstructions int64 // blocks rebuilt from parity
}

// validBlock returns a verified copy of the block at loc. buf holds the
// block's read contents (readErr == nil) or garbage (readErr != nil, e.g. a
// dead device); slots are the block's page slots and part the partition the
// caller expects (-1 = unknown). When verification fails — or the read
// itself did — the block is reconstructed in place from its stripe group
// and re-verified. The returned buffer is always buf. A nil error means
// every framed page in the block verified; a non-nil error is a structured
// *QueryError naming the device and partition.
func (rp *repairer) validBlock(loc nvmesim.Loc, buf []byte, slots []SpilledSlot, part int, readErr error) (vstats, error) {
	var st vstats
	cause := readErr
	if cause == nil {
		err := verifyBlockFrames(buf, slots, part)
		if err == nil {
			st.verified = int64(countFramed(slots))
			return st, nil
		}
		st.checksumErrors++
		cause = err
	}
	if !rp.enabled() {
		return st, spillReadError(loc, part, cause)
	}
	g := rp.byLoc[loc]
	if g == nil || g.Parity == 0 {
		return st, spillReadError(loc, part, cause)
	}
	if err := rp.reconstruct(g, loc, buf); err != nil {
		return st, &QueryError{
			Op: "spill-read", Part: part, Device: loc.Device(),
			Err: fmt.Errorf("block %v unrecoverable (%v): %w", loc, cause, err),
		}
	}
	if err := verifyBlockFrames(buf, slots, part); err != nil {
		// The rebuilt block still fails its checksums: a second silent
		// fault elsewhere in the group (or in the parity block itself).
		return st, &QueryError{
			Op: "spill-read", Part: part, Device: loc.Device(),
			Err: fmt.Errorf("block %v unrecoverable (%v): reconstruction produced %w", loc, cause, err),
		}
	}
	st.reconstructions++
	st.verified = int64(countFramed(slots))
	return st, nil
}

// reconstruct rebuilds the block at target into dst by XORing the stripe's
// surviving data blocks with its parity block. dst must be target.Size()
// long; it is zeroed first. Transient read errors on survivors are retried;
// a permanent failure (the stripe's second fault) is returned as-is.
func (rp *repairer) reconstruct(g *StripeGroup, target nvmesim.Loc, dst []byte) error {
	for i := range dst {
		dst[i] = 0
	}
	srcs := make([]nvmesim.Loc, 0, len(g.Data))
	for _, m := range g.Data {
		if m != target {
			srcs = append(srcs, m)
		}
	}
	srcs = append(srcs, g.Parity)
	buf := pages.GetBuf(maxLocSize(srcs))
	defer pages.PutBuf(buf)
	for _, src := range srcs {
		n, err := rp.readBlock(src, buf)
		if err != nil {
			return err
		}
		xorInto(dst, buf[:min(n, len(dst))])
	}
	return nil
}

// readBlock reads one survivor block through the repairer's private ring,
// retrying transient errors with the writer's backoff policy.
func (rp *repairer) readBlock(loc nvmesim.Loc, dst []byte) (int, error) {
	if rp.ring == nil {
		rp.ring = uring.New(rp.arr)
		if rp.ctx != nil {
			ctx := rp.ctx
			rp.ring.SetCancel(func() bool { return ctx.Err() != nil })
		}
	}
	clock := rp.arr.Clock()
	for attempt := 1; ; attempt++ {
		if rp.ctx != nil && rp.ctx.Err() != nil {
			return 0, rp.ctx.Err()
		}
		rp.ring.QueueRead(loc, dst[:loc.Size()], uint64(attempt))
		rp.ring.Submit()
		var done uring.Completion
		for rp.ring.Outstanding() > 0 {
			rp.scratch = rp.ring.Poll(rp.scratch[:0], true)
			for _, c := range rp.scratch {
				done = c
			}
			if rp.ctx != nil && rp.ctx.Err() != nil && rp.ring.Outstanding() > 0 {
				return 0, rp.ctx.Err()
			}
		}
		if done.Err == nil {
			return done.N, nil
		}
		if !nvmesim.IsTransient(done.Err) || attempt >= maxWriteAttempts {
			return 0, done.Err
		}
		clock.Sleep(retryBackoff(attempt))
	}
}

// verifyBlockFrames checks every framed slot of a block before anything is
// decoded — partial decode-then-fail would hand half a block downstream.
// Slots with Seq == 0 predate integrity (or come from a non-integrity
// writer) and are skipped.
func verifyBlockFrames(buf []byte, slots []SpilledSlot, part int) error {
	for _, s := range slots {
		if s.Seq == 0 {
			continue
		}
		end := int(s.Off) + int(s.Len)
		if end > len(buf) {
			return &pages.FrameError{Reason: fmt.Sprintf("slot extent [%d:%d) beyond block of %d", s.Off, end, len(buf)), Part: part, Seq: s.Seq}
		}
		if _, err := pages.VerifyFrame(buf[s.Off:end], part, s.Seq); err != nil {
			return err
		}
	}
	return nil
}

// countFramed returns how many of the slots carry integrity frames.
func countFramed(slots []SpilledSlot) int {
	n := 0
	for _, s := range slots {
		if s.Seq != 0 {
			n++
		}
	}
	return n
}

// spillReadError wraps an unrecoverable readback fault in the structured
// error consumers surface.
func spillReadError(loc nvmesim.Loc, part int, err error) error {
	return &QueryError{Op: "spill-read", Part: part, Device: loc.Device(), Err: err}
}

func maxLocSize(locs []nvmesim.Loc) int {
	m := 0
	for _, l := range locs {
		if s := l.Size(); s > m {
			m = s
		}
	}
	return m
}
