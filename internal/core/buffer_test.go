package core

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/pages"
	"github.com/spilly-db/spilly/internal/xhash"
)

// fastArray is an NVMe array fast enough that tests are not I/O-bound.
func fastArray(devs int) *nvmesim.Array {
	return nvmesim.New(devs, nvmesim.DeviceSpec{
		ReadBandwidth:  4e9,
		WriteBandwidth: 2e9,
		Latency:        20 * time.Microsecond,
	}, nvmesim.RealClock{})
}

// tup encodes a test tuple: 8-byte key + payload padding.
func tup(key uint64, size int) []byte {
	if size < 8 {
		size = 8
	}
	b := make([]byte, size)
	binary.LittleEndian.PutUint64(b, key)
	return b
}

func keyOf(t []byte) uint64 { return binary.LittleEndian.Uint64(t) }

func hashOf(key uint64) uint64 { return xhash.U64(key, 0) }

// storeN stores n distinct tuples of the given size through buf.
func storeN(b *Buffer, n, size int, offset uint64) {
	for i := 0; i < n; i++ {
		key := offset + uint64(i)
		b.StoreTuple(tup(key, size), hashOf(key))
	}
}

// collectKeys gathers every stored key from a finalized result, reading
// spilled partitions back from the array.
func collectKeys(t *testing.T, arr *nvmesim.Array, pageSize int, res *Result) map[uint64]int {
	t.Helper()
	out := map[uint64]int{}
	scan := func(p *pages.Page) {
		for i := 0; i < p.Tuples(); i++ {
			out[keyOf(p.Tuple(i))]++
		}
	}
	for _, p := range res.Unpartitioned {
		scan(p)
	}
	for _, p := range res.InMemory {
		scan(p)
	}
	for part := 0; part < res.Partitions; part++ {
		if len(res.Spilled[part]) == 0 {
			continue
		}
		r := NewPartitionReader(nil, arr, pageSize, res.Spilled[part], 4)
		pgs, err := r.ReadAll()
		if err != nil {
			t.Fatalf("reading partition %d: %v", part, err)
		}
		for _, p := range pgs {
			scan(p)
		}
	}
	return out
}

func checkAllKeys(t *testing.T, got map[uint64]int, n int, offset uint64) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("got %d distinct keys, want %d", len(got), n)
	}
	for i := 0; i < n; i++ {
		if got[offset+uint64(i)] != 1 {
			t.Fatalf("key %d appears %d times, want 1", offset+uint64(i), got[offset+uint64(i)])
		}
	}
}

func TestInMemoryNoPartitioning(t *testing.T) {
	s := NewShared(Config{PageSize: 4096, Partitions: 8})
	b := s.NewBuffer()
	storeN(b, 1000, 32, 0)
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.PartitioningActive() {
		t.Fatal("partitioning triggered without memory pressure")
	}
	if len(res.InMemory) != 0 {
		t.Fatal("partitioned pages exist without partitioning")
	}
	if res.HasSpilled() {
		t.Fatal("spilled without a budget")
	}
	checkAllKeys(t, collectKeys(t, nil, 4096, res), 1000, 0)
	if res.Tuples != 1000 {
		t.Fatalf("Tuples = %d", res.Tuples)
	}
}

func TestAdaptivePartitioningTriggers(t *testing.T) {
	budget := pages.NewBudget(128 << 10)
	s := NewShared(Config{PageSize: 4096, Partitions: 8, Budget: budget, PartitionAt: 0.25})
	b := s.NewBuffer()
	// ~45 KB of tuples: crosses the 32 KB partition threshold but stays
	// within the budget (no spill target is configured here).
	storeN(b, 1400, 32, 0)
	if !s.PartitioningActive() {
		t.Fatal("partitioning did not trigger under memory pressure")
	}
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Finalize()
	if len(res.Unpartitioned) == 0 {
		t.Fatal("no unpartitioned head: partitioning was not adaptive")
	}
	if len(res.InMemory) == 0 {
		t.Fatal("no partitioned pages after trigger")
	}
	checkAllKeys(t, collectKeys(t, nil, 4096, res), 1400, 0)
}

// TestPartitionPrefixInvariant checks §5.3: partition bits are a prefix of
// the hash, and every tuple on a partitioned page belongs to that partition.
func TestPartitionPrefixInvariant(t *testing.T) {
	s := NewShared(Config{PageSize: 4096, Partitions: 16, Mode: ModeAlwaysPartition})
	b := s.NewBuffer()
	storeN(b, 5000, 16, 0)
	b.Finish()
	res, _ := s.Finalize()
	if len(res.Unpartitioned) != 0 {
		t.Fatal("always-partition mode produced unpartitioned pages")
	}
	for part := 0; part < res.Partitions; part++ {
		for _, p := range res.InMemoryByPart(part) {
			if p.Part != part {
				t.Fatalf("page in list %d has Part=%d", part, p.Part)
			}
			for i := 0; i < p.Tuples(); i++ {
				h := hashOf(keyOf(p.Tuple(i)))
				if int(h>>(64-4)) != part {
					t.Fatalf("tuple with hash prefix %d on partition-%d page", h>>(64-4), part)
				}
			}
		}
	}
	checkAllKeys(t, collectKeys(t, nil, 4096, res), 5000, 0)
}

func TestSpillingRoundTrip(t *testing.T) {
	arr := fastArray(2)
	budget := pages.NewBudget(128 << 10)
	s := NewShared(Config{
		PageSize: 4096, Partitions: 8, Budget: budget, PartitionAt: 0.3,
		Spill: &SpillConfig{Array: arr},
	})
	b := s.NewBuffer()
	const n = 20000 // ~640 KB of tuples into a 128 KB budget
	storeN(b, n, 32, 0)
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasSpilled() {
		t.Fatal("5x overflow did not spill")
	}
	if res.SpilledBytes == 0 || res.WrittenBytes == 0 {
		t.Fatalf("spill counters empty: %+v", res)
	}
	checkAllKeys(t, collectKeys(t, arr, 4096, res), n, 0)
}

func TestHybridKeepsPartitionsInMemory(t *testing.T) {
	arr := fastArray(2)
	budget := pages.NewBudget(256 << 10)
	s := NewShared(Config{
		PageSize: 4096, Partitions: 8, Budget: budget, PartitionAt: 0.3,
		Spill: &SpillConfig{Array: arr},
	})
	b := s.NewBuffer()
	const n = 10000 // ~320 KB: slight overflow of the 256 KB budget
	storeN(b, n, 32, 0)
	b.Finish()
	res, _ := s.Finalize()
	if !res.HasSpilled() {
		t.Fatal("slight overflow did not spill at all")
	}
	if got := len(res.SpilledPartitions()); got == res.Partitions {
		t.Fatalf("hybrid spilling spilled all %d partitions on slight overflow", got)
	}
	checkAllKeys(t, collectKeys(t, arr, 4096, res), n, 0)
}

func TestSpillAllSpillsEverything(t *testing.T) {
	arr := fastArray(2)
	budget := pages.NewBudget(256 << 10)
	s := NewShared(Config{
		PageSize: 4096, Partitions: 8, Budget: budget, Mode: ModeSpillAll,
		Spill: &SpillConfig{Array: arr},
	})
	b := s.NewBuffer()
	const n = 10000
	storeN(b, n, 32, 0)
	b.Finish()
	res, _ := s.Finalize()
	if got := len(res.SpilledPartitions()); got != res.Partitions {
		t.Fatalf("spill-all spilled %d of %d partitions", got, res.Partitions)
	}
	checkAllKeys(t, collectKeys(t, arr, 4096, res), n, 0)
}

func TestSpillAllSpillsMoreThanHybrid(t *testing.T) {
	run := func(mode Mode) int64 {
		arr := fastArray(2)
		s := NewShared(Config{
			PageSize: 4096, Partitions: 8, Budget: pages.NewBudget(256 << 10),
			PartitionAt: 0.3, Mode: mode,
			Spill: &SpillConfig{Array: arr},
		})
		b := s.NewBuffer()
		storeN(b, 10000, 32, 0)
		b.Finish()
		res, _ := s.Finalize()
		return res.SpilledBytes
	}
	hybrid := run(ModeAdaptive)
	all := run(ModeSpillAll)
	if hybrid >= all {
		t.Fatalf("hybrid spilled %d >= spill-all %d; §6.5 shape violated", hybrid, all)
	}
}

func TestOutOfMemoryWithoutSpill(t *testing.T) {
	s := NewShared(Config{PageSize: 4096, Budget: pages.NewBudget(16 << 10), Mode: ModeNeverPartition})
	b := s.NewBuffer()
	err := func() (err error) {
		defer RecoverOOM(&err)
		storeN(b, 10000, 32, 0)
		return nil
	}()
	if err != ErrOutOfMemory {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestCompressedSpillRoundTrip(t *testing.T) {
	arr := fastArray(1)
	s := NewShared(Config{
		PageSize: 4096, Partitions: 8, Budget: pages.NewBudget(128 << 10), PartitionAt: 0.3,
		Spill: &SpillConfig{Array: arr, Compress: true, RunN: 4, MaxAhead: 8},
	})
	b := s.NewBuffer()
	const n = 20000
	storeN(b, n, 32, 0)
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasSpilled() {
		t.Fatal("did not spill")
	}
	var histTotal int64
	for _, v := range res.SchemeHistogram {
		histTotal += v
	}
	if histTotal != res.SpilledPages {
		t.Fatalf("histogram covers %d pages, spilled %d", histTotal, res.SpilledPages)
	}
	checkAllKeys(t, collectKeys(t, arr, 4096, res), n, 0)
}

func TestCompressionReducesWrittenBytes(t *testing.T) {
	// Force deep compression by making I/O very slow relative to CPU.
	arr := nvmesim.New(1, nvmesim.DeviceSpec{
		ReadBandwidth:  50e6,
		WriteBandwidth: 10e6, // 10 MB/s: strongly I/O-bound
		Latency:        50 * time.Microsecond,
	}, nvmesim.RealClock{})
	s := NewShared(Config{
		PageSize: 4096, Partitions: 8, Budget: pages.NewBudget(64 << 10), PartitionAt: 0.3,
		Spill: &SpillConfig{Array: arr, Compress: true, RunN: 4, MaxAhead: 8},
	})
	b := s.NewBuffer()
	storeN(b, 30000, 32, 0)
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Finalize()
	if res.WrittenBytes >= res.SpilledBytes {
		t.Fatalf("I/O-bound spill not compressed: wrote %d of %d raw", res.WrittenBytes, res.SpilledBytes)
	}
	checkAllKeys(t, collectKeys(t, arr, 4096, res), 30000, 0)
}

func TestSpillWriteErrorSurfaces(t *testing.T) {
	arr := fastArray(1)
	arr.InjectFailures(0, 1000000)
	s := NewShared(Config{
		PageSize: 4096, Partitions: 8, Budget: pages.NewBudget(32 << 10), PartitionAt: 0.3,
		Spill: &SpillConfig{Array: arr},
	})
	b := s.NewBuffer()
	storeN(b, 20000, 32, 0)
	if err := b.Finish(); err == nil {
		t.Fatal("injected write failures did not surface in Finish")
	}
	if _, err := s.Finalize(); err == nil {
		t.Fatal("injected write failures did not surface in Finalize")
	}
}

func TestMultiThreadedMaterialization(t *testing.T) {
	arr := fastArray(2)
	s := NewShared(Config{
		PageSize: 4096, Partitions: 16, Budget: pages.NewBudget(256 << 10), PartitionAt: 0.3,
		Spill: &SpillConfig{Array: arr},
	})
	const threads, perThread = 4, 8000
	var wg sync.WaitGroup
	errs := make([]error, threads)
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			b := s.NewBuffer()
			storeN(b, perThread, 32, uint64(th*perThread))
			errs[th] = b.Finish()
		}(th)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	got := collectKeys(t, arr, 4096, res)
	checkAllKeys(t, got, threads*perThread, 0)
}

func TestModesEquivalent(t *testing.T) {
	// All materialization modes must preserve the tuple multiset across
	// a range of budgets (the core invariant behind "unified operators").
	const n = 6000
	for _, mode := range []Mode{ModeAdaptive, ModeAlwaysPartition, ModeSpillAll} {
		for _, budgetKB := range []int64{32, 128, 1024} {
			arr := fastArray(2)
			s := NewShared(Config{
				PageSize: 4096, Partitions: 8, Budget: pages.NewBudget(budgetKB << 10),
				PartitionAt: 0.4, Mode: mode,
				Spill: &SpillConfig{Array: arr},
			})
			b := s.NewBuffer()
			storeN(b, n, 40, 0)
			if err := b.Finish(); err != nil {
				t.Fatalf("mode %d budget %dK: %v", mode, budgetKB, err)
			}
			res, err := s.Finalize()
			if err != nil {
				t.Fatal(err)
			}
			got := collectKeys(t, arr, 4096, res)
			if len(got) != n {
				t.Fatalf("mode %d budget %dK: %d keys, want %d", mode, budgetKB, len(got), n)
			}
		}
	}
}

func TestVariableSizeTuples(t *testing.T) {
	arr := fastArray(1)
	s := NewShared(Config{
		PageSize: 4096, Partitions: 8, Budget: pages.NewBudget(64 << 10), PartitionAt: 0.3,
		Spill: &SpillConfig{Array: arr, Compress: true, RunN: 4},
	})
	b := s.NewBuffer()
	const n = 8000
	for i := 0; i < n; i++ {
		key := uint64(i)
		size := 9 + i%200
		b.StoreTuple(tup(key, size), hashOf(key))
	}
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Finalize()
	got := collectKeys(t, arr, 4096, res)
	checkAllKeys(t, got, n, 0)
}

func TestOversizedTuplePanics(t *testing.T) {
	s := NewShared(Config{PageSize: 4096})
	b := s.NewBuffer()
	defer func() {
		if recover() == nil {
			t.Fatal("storing a tuple larger than the page did not panic")
		}
	}()
	b.StoreTuple(make([]byte, 8192), 1)
}

func TestAllocTuple(t *testing.T) {
	s := NewShared(Config{PageSize: 4096})
	b := s.NewBuffer()
	dst := b.AllocTuple(16, hashOf(7))
	binary.LittleEndian.PutUint64(dst, 7)
	b.Finish()
	res, _ := s.Finalize()
	got := collectKeys(t, nil, 4096, res)
	if got[7] != 1 {
		t.Fatal("in-place tuple lost")
	}
}

func TestFinishIdempotent(t *testing.T) {
	s := NewShared(Config{PageSize: 4096})
	b := s.NewBuffer()
	storeN(b, 10, 16, 0)
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Finalize()
	if res.Tuples != 10 {
		t.Fatalf("double Finish double-counted: %d tuples", res.Tuples)
	}
}

func TestBudgetBounded(t *testing.T) {
	// During heavy spilling, page memory must stay near the budget: the
	// whole point of Listing 2's bounded pool.
	arr := fastArray(2)
	budget := pages.NewBudget(128 << 10)
	s := NewShared(Config{
		PageSize: 4096, Partitions: 8, Budget: budget, PartitionAt: 0.3,
		Spill: &SpillConfig{Array: arr, MaxAhead: 8},
	})
	b := s.NewBuffer()
	maxUsed := int64(0)
	for i := 0; i < 50000; i++ {
		key := uint64(i)
		b.StoreTuple(tup(key, 32), hashOf(key))
		if u := budget.Used(); u > maxUsed {
			maxUsed = u
		}
	}
	b.Finish()
	// Allow budget + in-flight headroom (MaxAhead pages + slack).
	limit := int64(128<<10) + int64(16*4096)
	if maxUsed > limit {
		t.Fatalf("memory grew to %d, budget 128K + headroom %d", maxUsed, limit)
	}
}
