package core

import (
	"context"
	"errors"
	"testing"

	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/pages"
)

// paritySpill spills ~640 KB of tuples with parity stripes of width K and
// returns the array and the finalized result.
func paritySpill(t *testing.T, devs, parity, n int) (*nvmesim.Array, *Result) {
	t.Helper()
	arr := fastArray(devs)
	s := NewShared(Config{
		PageSize: 4096, Partitions: 8,
		Budget: pages.NewBudget(64 << 10), PartitionAt: 0.3,
		Spill: &SpillConfig{Array: arr, Parity: parity},
	})
	b := s.NewBuffer()
	storeN(b, n, 32, 0)
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasSpilled() {
		t.Fatal("test did not spill")
	}
	return arr, res
}

// collectVerified reads every spilled partition back with integrity armed
// and returns the keys plus the summed integrity counters.
func collectVerified(t *testing.T, arr *nvmesim.Array, res *Result) (map[uint64]int, vstats) {
	t.Helper()
	out := map[uint64]int{}
	var st vstats
	for _, p := range res.Unpartitioned {
		for i := 0; i < p.Tuples(); i++ {
			out[keyOf(p.Tuple(i))]++
		}
	}
	for _, p := range res.InMemory {
		for i := 0; i < p.Tuples(); i++ {
			out[keyOf(p.Tuple(i))]++
		}
	}
	for part := 0; part < res.Partitions; part++ {
		if len(res.Spilled[part]) == 0 {
			continue
		}
		r := NewPartitionReader(nil, arr, 4096, res.Spilled[part], 4)
		r.SetIntegrity(part, res.Stripes)
		pgs, err := r.ReadAll()
		if err != nil {
			t.Fatalf("reading partition %d: %v", part, err)
		}
		for _, p := range pgs {
			for i := 0; i < p.Tuples(); i++ {
				out[keyOf(p.Tuple(i))]++
			}
		}
		st.verified += r.Verified()
		st.checksumErrors += r.ChecksumErrors()
		st.reconstructions += r.Reconstructions()
		r.Release()
	}
	return out, st
}

func TestParitySpillRoundTrip(t *testing.T) {
	const n = 20000
	arr, res := paritySpill(t, 4, 2, n)
	if len(res.Stripes) == 0 {
		t.Fatal("parity spill recorded no stripe groups")
	}
	if res.ParityBytes == 0 {
		t.Fatal("parity spill recorded no parity bytes")
	}
	for part := range res.Spilled {
		for _, sl := range res.Spilled[part] {
			if sl.Seq == 0 {
				t.Fatalf("partition %d has unframed slot %+v under parity", part, sl)
			}
		}
	}
	got, st := collectVerified(t, arr, res)
	checkAllKeys(t, got, n, 0)
	if st.verified == 0 {
		t.Fatal("no frames verified")
	}
	if st.checksumErrors != 0 || st.reconstructions != 0 {
		t.Fatalf("clean run saw faults: %+v", st)
	}
}

func TestStripeMembersOnDistinctDevices(t *testing.T) {
	_, res := paritySpill(t, 4, 2, 20000)
	for _, g := range res.Stripes {
		if g.Parity == 0 {
			t.Fatalf("group %+v has no parity", g)
		}
		seen := map[int]bool{}
		for _, m := range append(append([]nvmesim.Loc(nil), g.Data...), g.Parity) {
			if seen[m.Device()] {
				t.Fatalf("stripe group %+v reuses device %d", g, m.Device())
			}
			seen[m.Device()] = true
		}
	}
}

func TestCorruptionHealsFromParity(t *testing.T) {
	const n = 20000
	arr, res := paritySpill(t, 4, 2, n)
	// Every read from device 0 silently flips one bit. Blocks on device 0
	// must be rebuilt from their stripe survivors on devices 1-3.
	arr.SetFaultPlan(0, nvmesim.FaultPlan{Seed: 7, CorruptRate: 1.0})
	got, st := collectVerified(t, arr, res)
	checkAllKeys(t, got, n, 0)
	if st.checksumErrors == 0 {
		t.Fatal("corrupted reads were not detected")
	}
	if st.reconstructions == 0 {
		t.Fatal("no blocks were reconstructed")
	}
	if st.checksumErrors != st.reconstructions {
		t.Fatalf("checksum errors %d != reconstructions %d (some faults unhealed?)",
			st.checksumErrors, st.reconstructions)
	}
}

func TestDeadDeviceHealsFromParity(t *testing.T) {
	const n = 20000
	arr, res := paritySpill(t, 4, 2, n)
	arr.KillDevice(0)
	got, st := collectVerified(t, arr, res)
	checkAllKeys(t, got, n, 0)
	if st.reconstructions == 0 {
		t.Fatal("dead device triggered no reconstructions")
	}
}

func TestDoubleFaultIsStructuredError(t *testing.T) {
	arr, res := paritySpill(t, 4, 2, 20000)
	// Two dead devices exceed single-parity redundancy for any stripe that
	// spans both. The reader must fail with a structured error naming the
	// device and partition — never return wrong data.
	arr.KillDevice(0)
	arr.KillDevice(1)
	sawError := false
	for part := 0; part < res.Partitions; part++ {
		if len(res.Spilled[part]) == 0 {
			continue
		}
		r := NewPartitionReader(nil, arr, 4096, res.Spilled[part], 4)
		r.SetIntegrity(part, res.Stripes)
		_, err := r.ReadAll()
		r.Release()
		if err == nil {
			continue
		}
		sawError = true
		var qe *QueryError
		if !errors.As(err, &qe) {
			t.Fatalf("double fault surfaced unstructured error: %v", err)
		}
		if qe.Op != "spill-read" || qe.Part != part || qe.Device < 0 {
			t.Fatalf("QueryError misses context: %+v", qe)
		}
	}
	if !sawError {
		t.Fatal("two dead devices produced no error")
	}
}

func TestSilentDoubleFaultIsStructuredError(t *testing.T) {
	// One device, so every stripe member shares it: corruption on every read
	// makes reconstruction itself read corrupt survivors, the rebuilt block
	// fails re-verification, and the fault must surface structured.
	arr, res := paritySpill(t, 1, 2, 20000)
	arr.SetFaultPlan(0, nvmesim.FaultPlan{Seed: 11, CorruptRate: 1.0})
	sawError := false
	for part := 0; part < res.Partitions; part++ {
		if len(res.Spilled[part]) == 0 {
			continue
		}
		r := NewPartitionReader(nil, arr, 4096, res.Spilled[part], 4)
		r.SetIntegrity(part, res.Stripes)
		_, err := r.ReadAll()
		r.Release()
		if err == nil {
			continue
		}
		sawError = true
		var qe *QueryError
		if !errors.As(err, &qe) {
			t.Fatalf("silent double fault surfaced unstructured error: %v", err)
		}
		if qe.Part != part {
			t.Fatalf("QueryError names partition %d, want %d", qe.Part, part)
		}
	}
	if !sawError {
		t.Fatal("unhealable corruption produced no error")
	}
}

func TestSchedulerHealsCorruption(t *testing.T) {
	const n = 20000
	arr, res := paritySpill(t, 4, 2, n)
	arr.SetFaultPlan(0, nvmesim.FaultPlan{Seed: 7, CorruptRate: 1.0})
	var work []PartitionWork
	for part := 0; part < res.Partitions; part++ {
		if len(res.Spilled[part]) > 0 {
			work = append(work, PartitionWork{Part: part, Slots: res.Spilled[part]})
		}
	}
	sched := NewPartitionScheduler(context.Background(), arr, 4096, work, 0, pages.NewBudget(1<<20), false)
	sched.SetIntegrity(res.Stripes)
	defer sched.Close()
	got := map[uint64]int{}
	for _, p := range res.Unpartitioned {
		for i := 0; i < p.Tuples(); i++ {
			got[keyOf(p.Tuple(i))]++
		}
	}
	for _, p := range res.InMemory {
		for i := 0; i < p.Tuples(); i++ {
			got[keyOf(p.Tuple(i))]++
		}
	}
	var st vstats
	for i := range work {
		cur := sched.Open(i)
		for {
			p, err := cur.Next()
			if err != nil {
				t.Fatalf("partition %d: %v", work[i].Part, err)
			}
			if p == nil {
				break
			}
			for j := 0; j < p.Tuples(); j++ {
				got[keyOf(p.Tuple(j))]++
			}
		}
		st.verified += cur.Verified()
		st.checksumErrors += cur.ChecksumErrors()
		st.reconstructions += cur.Reconstructions()
		cur.Release()
	}
	checkAllKeys(t, got, n, 0)
	if st.verified == 0 || st.reconstructions == 0 {
		t.Fatalf("scheduler integrity counters empty: %+v", st)
	}
}

func TestSchedulerDoubleFaultIsStructuredError(t *testing.T) {
	arr, res := paritySpill(t, 4, 2, 20000)
	arr.KillDevice(0)
	arr.KillDevice(1)
	var work []PartitionWork
	for part := 0; part < res.Partitions; part++ {
		if len(res.Spilled[part]) > 0 {
			work = append(work, PartitionWork{Part: part, Slots: res.Spilled[part]})
		}
	}
	sched := NewPartitionScheduler(context.Background(), arr, 4096, work, 0, pages.NewBudget(1<<20), false)
	sched.SetIntegrity(res.Stripes)
	defer sched.Close()
	sawError := false
	for i := range work {
		cur := sched.Open(i)
		var err error
		for {
			var p *pages.Page
			p, err = cur.Next()
			if err != nil || p == nil {
				break
			}
		}
		cur.Release()
		if err == nil {
			continue
		}
		sawError = true
		var qe *QueryError
		if !errors.As(err, &qe) {
			t.Fatalf("double fault surfaced unstructured error: %v", err)
		}
		if qe.Op != "spill-read" || qe.Device < 0 {
			t.Fatalf("QueryError misses context: %+v", qe)
		}
	}
	if !sawError {
		t.Fatal("two dead devices produced no error through the scheduler")
	}
}

func TestParityDegradesOnParityWriteFailure(t *testing.T) {
	// A clean parity run and one where parity writes may fail must both
	// produce correct data; the failed-parity groups simply lose redundancy.
	arr := fastArray(2)
	s := NewShared(Config{
		PageSize: 4096, Partitions: 8,
		Budget: pages.NewBudget(64 << 10), PartitionAt: 0.3,
		Spill: &SpillConfig{Array: arr, Parity: 2},
	})
	b := s.NewBuffer()
	const n = 20000
	storeN(b, n, 32, 0)
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := collectVerified(t, arr, res)
	checkAllKeys(t, got, n, 0)
}
