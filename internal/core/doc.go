// Package core implements Umami — the Unified Materialization Management
// Interface that is the paper's primary contribution (§4).
//
// Umami unifies in-memory materialization and spilling behind one interface
// so that physical operator choice becomes unnecessary. It rests on two
// independent but complementary techniques:
//
//   - Adaptive materialization (§4.2): the per-tuple fast path
//     (Buffer.StoreTuple) indexes a page array by hash >> shift. With
//     shift = 64 there is one partition (plain in-memory materialization);
//     lowering the shift at runtime enables 2^(64-shift) hash partitions —
//     transparently to the operator, which never presupposes tuple
//     locations. Spilling is injected at page-allocation time: when the
//     memory budget is exhausted, full pages are queued for asynchronous
//     writes and clean pages are drawn from a bounded pool (Listing 2).
//
//   - Self-regulating compression (§4.4): a Regulator tracks operator CPU
//     cost, compression cost, and I/O cost in a common currency (cycles per
//     byte) and walks a unified compression scale until effective I/O
//     bandwidth matches CPU bandwidth.
//
// The package also provides the generalized hybrid spilling of §4.3: a
// partition bitmask under an optimistic lock lets threads agree lazily on
// which partitions to evict, so that — like the hybrid hash join, but for
// any hash-based operator — as much data as possible stays in memory.
//
// Operators (internal/exec) use one Buffer per worker thread, all attached
// to a Shared operator state. After the materialization phase, Finalize
// returns the materialization Result: in-memory pages (partitioned and
// unpartitioned mixed — the build phase is partition-agnostic per §4.2
// "Independence") plus the spilled partitions, which a PartitionReader
// streams back from the NVMe array.
package core
