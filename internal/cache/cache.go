// Package cache implements the governor-integrated query-result reuse
// cache (DESIGN.md §14).
//
// The cache stores finished query results keyed by (plan fingerprint,
// catalog generation) and serves repeated queries without re-executing or
// re-entering the admission queue. It is two-tier, applying the paper's
// central trick — materialization to the NVMe array is cheap enough that
// memory pressure should shed bytes, not work — to the cache itself:
//
//   - The hot tier holds decoded batches in memory, accounted against a
//     reservation rented from the admission governor's idle headroom.
//     The cache is a strictly lower-priority tenant: reservations are
//     refused while queries queue, and the governor's pressure callback
//     (Shrink) reclaims reservation the moment an admission falls short,
//     so cached results can never starve live queries.
//   - Entries evicted from the hot tier are demoted, not dropped: rows
//     are serialized through the engine's RowCodec tuple format,
//     compressed with a self-regulating codec (the same unified scale the
//     spill path uses, fed with measured write latencies), wrapped in
//     checksummed spill page frames, and written to the spill array under
//     a per-entry lease. A later hit restores them through the zero-copy
//     arena decode path — typically still far cheaper than recomputing.
//
// Admission is cost-based: a result is cached only when its measured
// compute time exceeds the estimated cost of restoring it from NVMe, so
// the cache never spends memory making cheap queries marginally cheaper.
// Eviction order (both demotion from memory and final drop from disk) is
// by benefit density: cost × (hits+1) / size, lowest first.
package cache

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spilly-db/spilly/internal/codec"
	"github.com/spilly-db/spilly/internal/core"
	"github.com/spilly-db/spilly/internal/data"
	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/pages"
	"github.com/spilly-db/spilly/internal/uring"
)

// Key identifies one cacheable result: the canonical plan fingerprint
// (exec.PlanFingerprint) plus the catalog generation it ran against.
// RegisterTable bumps the generation, so results computed over a replaced
// table can never be served again.
type Key struct {
	Plan uint64
	Gen  uint64
}

// Tier reports which tier served a hit.
type Tier int

const (
	TierNone   Tier = iota // miss
	TierMemory             // hot tier
	TierNVMe               // demoted entry restored from the spill array
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierMemory:
		return "memory"
	case TierNVMe:
		return "nvme"
	default:
		return "none"
	}
}

// Config configures a result cache.
type Config struct {
	// Capacity bounds the hot tier in bytes (estimated batch footprint).
	Capacity int64
	// DiskFactor bounds the demoted tier at DiskFactor × Capacity raw
	// (pre-compression) bytes. 0 defaults to 4.
	DiskFactor int64
	// Array is the spill array demoted entries are written to. nil makes
	// the cache memory-only: hot-tier evictions drop.
	Array *nvmesim.Array
	// Gov, when non-nil, is the admission governor hot-tier memory is
	// rented from. The cache registers itself as the governor's pressure
	// callback.
	Gov *pages.Governor
	// Scale is the compression scale for demotion; nil = core.DefaultScale.
	Scale []codec.ID
	// RestoreOverhead is the fixed per-restore latency estimate added on
	// top of size/bandwidth in the cost-based admission test. 0 defaults
	// to 500µs.
	RestoreOverhead time.Duration
	// IO, when non-nil, routes demotion writes through the engine's shared
	// I/O scheduler as background-class requests, so cache maintenance
	// yields to running queries' demand reads and spill writes. Restores
	// stay synchronous: a restore is on some query's critical path already
	// and its cost model assumes device bandwidth, not queueing.
	IO uring.Dispatcher
}

// chunk is one framed, compressed piece of a demoted entry on the array.
type chunk struct {
	dev      int
	off      int64
	frameLen int // framed length on device (FrameSize + compressed payload)
	rawLen   int // uncompressed payload length
	seq      uint32
	codec    codec.ID
}

// entry is one cached result. Exactly one of batch (hot) and chunks
// (demoted) is set.
type entry struct {
	key    Key
	schema *data.Schema
	size   int64 // estimated in-memory footprint of the decoded batch
	cost   time.Duration
	hits   int64

	batch *data.Batch // hot tier

	// Demoted representation.
	lease  *nvmesim.Lease
	chunks []chunk
	rows   int
}

// score is the eviction benefit density: time saved per byte retained,
// weighted by observed popularity. Lowest goes first.
func (e *entry) score() float64 {
	return float64(e.cost) * float64(e.hits+1) / float64(e.size+1)
}

// Cache is the result-reuse cache. A single mutex guards the maps, the
// accounting, and the (deliberately shared, not-thread-safe) compression
// regulator; hit/miss counters are atomics so Stats stays cheap.
//
// Known tradeoff: demotion and restore perform their chunk IO while
// holding c.mu, so a slow restore briefly serializes concurrent
// Get/Put/Shrink calls behind it. Results are single batches whose
// chunked IO is short on the simulated array (hundreds of microseconds),
// and accepting the stall keeps the tier transition atomic — no
// entry-level state machine for "demoting"/"restoring" states. If results
// ever grow large enough for this to show up in admission-pressure
// latency, stage the frames under the lock, do the IO unlocked, and
// reacquire to commit.
type Cache struct {
	cfg Config

	mu       sync.Mutex
	entries  map[Key]*entry
	hotBytes int64 // sum of hot entries' size
	reserved int64 // governor reservation currently held (== hotBytes when governed)
	rawDisk  int64 // sum of demoted entries' raw (uncompressed) size
	reg      *core.Regulator
	seq      uint32
	nextDev  int

	hits         atomic.Int64
	hitsMemory   atomic.Int64
	hitsNVMe     atomic.Int64
	misses       atomic.Int64
	puts         atomic.Int64
	rejects      atomic.Int64 // cost-based admission refusals
	demotions    atomic.Int64
	restores     atomic.Int64
	drops        atomic.Int64
	invalidated  atomic.Int64
	shrinks      atomic.Int64
	restoreBytes atomic.Int64 // raw bytes decoded from the array
}

// New returns a result cache. When cfg.Gov is non-nil the cache installs
// itself as the governor's pressure callback.
func New(cfg Config) *Cache {
	if cfg.DiskFactor <= 0 {
		cfg.DiskFactor = 4
	}
	if cfg.RestoreOverhead <= 0 {
		cfg.RestoreOverhead = 500 * time.Microsecond
	}
	c := &Cache{
		cfg:     cfg,
		entries: make(map[Key]*entry),
		reg:     core.NewRegulator(cfg.Scale, 8),
		// Start the frame sequence space high so cache frames are
		// trivially distinguishable from query spill frames in dumps.
		seq: 1 << 30,
	}
	if cfg.Gov != nil {
		cfg.Gov.SetPressure(func(need int64) { c.Shrink(need) })
	}
	return c
}

// Get looks up a cached result. On a hit it returns a defensive copy (the
// caller owns and may mutate it) and the tier that served it. A demoted
// entry is restored from the array and, when memory allows, promoted back
// to the hot tier.
func (c *Cache) Get(key Key) (*data.Batch, Tier, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, TierNone, nil
	}
	e.hits++
	if e.batch != nil {
		out := copyBatch(e.batch)
		c.mu.Unlock()
		c.hits.Add(1)
		c.hitsMemory.Add(1)
		return out, TierMemory, nil
	}
	b, err := c.restoreLocked(e)
	if err != nil {
		// The demoted copy is unreadable (device loss, corruption beyond
		// the array's own repair). Drop the entry; the caller recomputes.
		c.dropLocked(e)
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, TierNone, err
	}
	c.restores.Add(1)
	c.restoreBytes.Add(e.size)
	c.promoteLocked(e, b)
	out := copyBatch(b)
	c.mu.Unlock()
	c.hits.Add(1)
	c.hitsNVMe.Add(1)
	return out, TierNVMe, nil
}

// Put offers a computed result to the cache. cost is the measured compute
// (execution) time. The entry is admitted only when recomputing is
// estimated to be more expensive than restoring from NVMe; returns
// whether the result was retained (in either tier).
func (c *Cache) Put(key Key, b *data.Batch, cost time.Duration) bool {
	if b == nil || c.cfg.Capacity <= 0 {
		return false
	}
	size := batchFootprint(b)
	if size > c.cfg.Capacity || cost < c.restoreEstimate(size) {
		c.rejects.Add(1)
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[key]; ok {
		// Refresh an existing entry's cost; the result is identical by
		// construction (same plan, same catalog generation).
		old.cost = cost
		return true
	}
	e := &entry{key: key, schema: b.Schema, size: size, cost: cost, batch: copyBatch(b)}
	if !c.makeRoomLocked(e.size) || !c.rentLocked(e.size) {
		// No memory-tier room (capacity or governor refusal): demote the
		// new entry straight to the array rather than losing it.
		if err := c.demoteLocked(e); err != nil {
			c.rejects.Add(1)
			return false
		}
		c.entries[key] = e
		c.puts.Add(1)
		return true
	}
	c.hotBytes += e.size
	c.entries[key] = e
	c.puts.Add(1)
	return true
}

// restoreEstimate is the cost-based admission bar: how long restoring
// size bytes from the array is expected to take.
func (c *Cache) restoreEstimate(size int64) time.Duration {
	est := c.cfg.RestoreOverhead
	if c.cfg.Array != nil {
		if bw := c.cfg.Array.MaxReadBandwidth(); bw > 0 {
			est += time.Duration(float64(size) / bw * float64(time.Second))
		}
	}
	return est
}

// rentLocked acquires bytes of governor reservation (no-op when
// ungoverned). Caller holds c.mu; the governor lock nests inside.
func (c *Cache) rentLocked(bytes int64) bool {
	if c.cfg.Gov == nil {
		return true
	}
	if !c.cfg.Gov.ReserveCache(bytes) {
		return false
	}
	c.reserved += bytes
	return true
}

// returnLocked gives bytes of reservation back to the governor.
func (c *Cache) returnLocked(bytes int64) {
	if c.cfg.Gov == nil {
		return
	}
	c.reserved -= bytes
	c.cfg.Gov.ReleaseCache(bytes)
}

// makeRoomLocked demotes lowest-score hot entries until size more bytes
// fit under Capacity. Reports whether the hot tier can take size bytes.
func (c *Cache) makeRoomLocked(size int64) bool {
	if size > c.cfg.Capacity {
		return false
	}
	for c.hotBytes+size > c.cfg.Capacity {
		victim := c.lowestScoreLocked(true)
		if victim == nil {
			return false
		}
		c.evictHotLocked(victim)
	}
	return true
}

// lowestScoreLocked returns the lowest-score entry in the requested tier
// (hot=true: memory tier; hot=false: demoted tier), or nil when empty.
func (c *Cache) lowestScoreLocked(hot bool) *entry {
	var victim *entry
	for _, e := range c.entries {
		if (e.batch != nil) != hot {
			continue
		}
		if victim == nil || e.score() < victim.score() {
			victim = e
		}
	}
	return victim
}

// evictHotLocked pushes a hot entry out of the memory tier: demoted to
// the array when one is configured, dropped otherwise. The freed bytes
// are returned to the governor either way.
func (c *Cache) evictHotLocked(e *entry) {
	size := e.size
	if err := c.demoteLocked(e); err != nil {
		// Demotion failed (no array, demoted tier full, or a write error):
		// drop the entry instead. dropLocked sees e still in the hot tier
		// (e.batch != nil) and adjusts hotBytes and the reservation itself,
		// so the success-path accounting below must not run again.
		c.dropLocked(e)
		return
	}
	c.hotBytes -= size
	c.returnLocked(size)
}

// demoteLocked serializes e's batch into uvarint-length-prefixed RowCodec
// tuples, compresses each chunk with the self-regulating codec, frames it
// with a checksum, and writes it to the spill array under a fresh
// per-entry lease. On success the in-memory batch is released.
func (c *Cache) demoteLocked(e *entry) error {
	if c.cfg.Array == nil {
		return fmt.Errorf("cache: no spill array configured")
	}
	if c.rawDisk+e.size > c.cfg.DiskFactor*c.cfg.Capacity {
		// Demoted tier full: drop its weakest entries first; if e itself
		// is the weakest, refuse and let the caller drop it.
		for c.rawDisk+e.size > c.cfg.DiskFactor*c.cfg.Capacity {
			victim := c.lowestScoreLocked(false)
			if victim == nil || victim.score() >= e.score() {
				return fmt.Errorf("cache: demoted tier full")
			}
			c.dropLocked(victim)
		}
	}
	b := e.batch
	rc := data.NewRowCodec(b.Schema.Types())
	lease := c.cfg.Array.NewLease()
	// Demotion writes go through a background-class ring when the engine
	// has a shared I/O scheduler: cache maintenance fills idle device
	// headroom but never crowds out query traffic. The ring drains before
	// demoteLocked returns (under c.mu, like the rest of the tier
	// transition), so a restore can never race an unfinished write.
	var ring *uring.Ring
	if c.cfg.IO != nil {
		ring = uring.New(c.cfg.Array)
		ring.SetLease(lease)
		ring.Bind(c.cfg.IO, uring.ClassBackground, 0)
	}
	var chunks []chunk
	const chunkMax = 256 << 10
	var buf []byte
	var lenb [binary.MaxVarintLen64]byte
	// flush compresses, frames, and writes the buffered tuples as one
	// chunk. restoreLocked decodes each chunk's tuple stream independently,
	// so chunks may only ever split on tuple boundaries.
	flush := func() error {
		raw := buf
		comp, id := c.reg.CompressPage(raw)
		c.seq++
		seq := c.seq
		frame := pages.AppendFrame(nil, -1, seq, comp)
		dev := c.nextDev % c.cfg.Array.Devices()
		c.nextDev++
		var at int64
		if ring != nil {
			loc, err := ring.QueueWriteDev(dev, frame, uint64(seq))
			if err != nil {
				return err
			}
			at = loc.Offset()
		} else {
			var err error
			at, err = c.cfg.Array.AllocSpillLease(dev, len(frame), lease)
			if err != nil {
				return err
			}
			start := time.Now()
			if _, err := c.cfg.Array.Write(dev, at, frame); err != nil {
				return err
			}
			// Feed the measured write back to the regulator so the codec
			// choice genuinely adapts to the array's current speed.
			c.reg.ObserveIO(uring.Completion{N: len(frame), Latency: time.Since(start)}, 1)
		}
		chunks = append(chunks, chunk{
			dev: dev, off: at, frameLen: len(frame), rawLen: len(raw),
			seq: seq, codec: id,
		})
		return nil
	}
	// abort quiesces the demotion ring (if any) and frees the lease after
	// a failed demotion, leaving the entry hot for the caller to drop.
	abort := func() {
		if ring != nil {
			ring.CancelDeferred()
			ring.WaitAll(nil)
		}
		lease.Free()
	}
	// Serialize all live rows — uvarint length prefix, then the tuple —
	// flushing a chunk whenever the next whole tuple would overflow it.
	for i := 0; i < b.Rows(); i++ {
		r := b.Row(i)
		sz := rc.Size(b, r)
		n := binary.PutUvarint(lenb[:], uint64(sz))
		if len(buf) > 0 && len(buf)+n+sz > chunkMax {
			if err := flush(); err != nil {
				abort()
				return err
			}
			buf = buf[:0]
		}
		buf = append(buf, lenb[:n]...)
		off := len(buf)
		buf = append(buf, make([]byte, sz)...)
		rc.Encode(buf[off:off+sz], b, r)
	}
	// Final flush; an empty batch still writes one empty chunk so the
	// entry round-trips through the same read path.
	if err := flush(); err != nil {
		abort()
		return err
	}
	if ring != nil {
		// Drain the background writes before committing the tier change.
		// Completion latency includes the scheduler's queueing delay, which
		// is exactly what the regulator should adapt to.
		for _, comp := range ring.WaitAll(nil) {
			if comp.Err != nil {
				abort()
				return comp.Err
			}
			c.reg.ObserveIO(comp, 1)
		}
		if ring.Outstanding() > 0 {
			abort()
			return fmt.Errorf("cache: demotion writes did not drain")
		}
	}
	e.lease, e.chunks, e.rows = lease, chunks, b.Rows()
	e.batch = nil
	c.rawDisk += e.size
	c.demotions.Add(1)
	return nil
}

// restoreLocked reads a demoted entry back: read each chunk, verify its
// frame, decompress, and decode the tuples through the arena-interning
// RowCodec path (string bytes are interned once; no per-field copies).
func (c *Cache) restoreLocked(e *entry) (*data.Batch, error) {
	rc := data.NewRowCodec(e.schema.Types())
	out := data.NewBatch(e.schema, e.rows)
	var arena data.ByteArena
	buf := make([]byte, 0, 256<<10+pages.FrameSize)
	for _, ch := range e.chunks {
		if cap(buf) < ch.frameLen {
			buf = make([]byte, ch.frameLen)
		}
		buf = buf[:ch.frameLen]
		if _, _, err := c.cfg.Array.Read(ch.dev, ch.off, buf); err != nil {
			return nil, err
		}
		payload, err := pages.VerifyFrame(buf, -1, ch.seq)
		if err != nil {
			return nil, err
		}
		raw := payload
		if ch.codec != codec.None {
			raw, err = codec.ByID(ch.codec).Decompress(make([]byte, 0, ch.rawLen), payload)
			if err != nil {
				return nil, err
			}
		}
		for len(raw) > 0 {
			sz, n := binary.Uvarint(raw)
			if n <= 0 || int(sz) > len(raw)-n {
				return nil, fmt.Errorf("cache: corrupt tuple length in restored chunk")
			}
			rc.AppendToArena(out, raw[n:n+int(sz)], &arena)
			raw = raw[n+int(sz):]
		}
	}
	if out.Len() != e.rows {
		return nil, fmt.Errorf("cache: restored %d rows, expected %d", out.Len(), e.rows)
	}
	return out, nil
}

// promoteLocked moves a just-restored entry back into the hot tier when
// capacity and the governor allow; otherwise the entry stays demoted and
// the restored batch serves only this hit.
func (c *Cache) promoteLocked(e *entry, b *data.Batch) {
	if c.hotBytes+e.size > c.cfg.Capacity || !c.rentLocked(e.size) {
		return
	}
	e.batch = b
	e.lease.Free()
	e.lease, e.chunks = nil, nil
	c.rawDisk -= e.size
	c.hotBytes += e.size
}

// dropLocked removes an entry entirely, freeing its lease (demoted) or
// hot bytes + reservation (hot).
func (c *Cache) dropLocked(e *entry) {
	if e.batch != nil {
		c.hotBytes -= e.size
		c.returnLocked(e.size)
	} else {
		e.lease.Free()
		c.rawDisk -= e.size
	}
	delete(c.entries, e.key)
	c.drops.Add(1)
}

// Shrink surrenders at least need bytes of governor reservation by
// demoting lowest-score hot entries (the governor's pressure callback;
// must not be called with the governor's lock held). Returns the bytes
// actually released.
func (c *Cache) Shrink(need int64) int64 {
	c.shrinks.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	var freed int64
	for freed < need {
		victim := c.lowestScoreLocked(true)
		if victim == nil {
			break
		}
		freed += victim.size
		c.evictHotLocked(victim)
	}
	return freed
}

// RemoveStale drops every entry whose catalog generation is older than
// cur (called by RegisterTable after bumping the generation).
func (c *Cache) RemoveStale(cur uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		if e.key.Gen < cur {
			c.dropLocked(e)
			c.invalidated.Add(1)
		}
	}
}

// Clear drops every entry, returning all reservation to the governor and
// freeing every demotion lease. A cleared cache serves true cold runs.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		c.dropLocked(e)
	}
	if c.reserved != 0 {
		panic("cache: reservation not drained by Clear")
	}
}

// DemoteAll forces every hot entry to the array (bench/test hook for
// measuring warm-NVMe hits). Returns how many entries were demoted.
func (c *Cache) DemoteAll() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int
	for {
		victim := c.lowestScoreLocked(true)
		if victim == nil {
			return n
		}
		c.evictHotLocked(victim)
		n++
	}
}

// Stats is a snapshot of cache state and counters.
type Stats struct {
	HotEntries  int
	HotBytes    int64
	DiskEntries int
	DiskBytes   int64 // raw (uncompressed) footprint of demoted entries
	Reserved    int64 // governor reservation currently held

	Hits         int64
	HitsMemory   int64
	HitsNVMe     int64
	Misses       int64
	Puts         int64
	Rejects      int64 // cost-based admission refusals
	Demotions    int64
	Restores     int64
	RestoreBytes int64
	Drops        int64
	Invalidated  int64
	Shrinks      int64
}

// Stats returns a snapshot.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	s := Stats{
		HotBytes:  c.hotBytes,
		DiskBytes: c.rawDisk,
		Reserved:  c.reserved,
	}
	for _, e := range c.entries {
		if e.batch != nil {
			s.HotEntries++
		} else {
			s.DiskEntries++
		}
	}
	c.mu.Unlock()
	s.Hits = c.hits.Load()
	s.HitsMemory = c.hitsMemory.Load()
	s.HitsNVMe = c.hitsNVMe.Load()
	s.Misses = c.misses.Load()
	s.Puts = c.puts.Load()
	s.Rejects = c.rejects.Load()
	s.Demotions = c.demotions.Load()
	s.Restores = c.restores.Load()
	s.RestoreBytes = c.restoreBytes.Load()
	s.Drops = c.drops.Load()
	s.Invalidated = c.invalidated.Load()
	s.Shrinks = c.shrinks.Load()
	return s
}

// copyBatch deep-copies the live rows of b into a fresh flat batch.
func copyBatch(b *data.Batch) *data.Batch {
	out := data.NewBatch(b.Schema, b.Rows())
	for i := 0; i < b.Rows(); i++ {
		out.AppendRowFrom(b, b.Row(i))
	}
	return out
}

// batchFootprint estimates the in-memory size of a batch's live rows: 8
// bytes per fixed-width cell, string header + bytes per string cell.
func batchFootprint(b *data.Batch) int64 {
	var n int64
	rows := int64(b.Rows())
	for i := range b.Cols {
		c := &b.Cols[i]
		if c.Type == data.String {
			for j := 0; j < b.Rows(); j++ {
				n += 16 + int64(len(c.S[b.Row(j)]))
			}
		} else {
			n += 8 * rows
		}
		if c.Null != nil {
			n += rows
		}
	}
	return n
}
