package cache

import (
	"fmt"
	"testing"
	"time"

	"github.com/spilly-db/spilly/internal/data"
	"github.com/spilly-db/spilly/internal/nvmesim"
	"github.com/spilly-db/spilly/internal/pages"
)

func testArray() *nvmesim.Array {
	return nvmesim.New(2, nvmesim.DeviceSpec{
		ReadBandwidth:  4e9,
		WriteBandwidth: 2e9,
		Latency:        20 * time.Microsecond,
	}, nvmesim.RealClock{})
}

func testBatch(rows int, tag string) *data.Batch {
	sch := &data.Schema{Cols: []data.ColumnDef{
		{Name: "k", Type: data.Int64},
		{Name: "v", Type: data.Float64},
		{Name: "s", Type: data.String},
	}}
	b := data.NewBatch(sch, rows)
	for i := 0; i < rows; i++ {
		b.Cols[0].I = append(b.Cols[0].I, int64(i))
		b.Cols[1].F = append(b.Cols[1].F, float64(i)*0.5)
		b.Cols[2].S = append(b.Cols[2].S, fmt.Sprintf("%s-%d", tag, i))
	}
	b.SetLen(rows)
	return b
}

func batchesEqual(t *testing.T, a, b *data.Batch) {
	t.Helper()
	if a.Rows() != b.Rows() {
		t.Fatalf("row count: %d vs %d", a.Rows(), b.Rows())
	}
	for i := 0; i < a.Rows(); i++ {
		ra, rb := a.Row(i), b.Row(i)
		if a.Cols[0].I[ra] != b.Cols[0].I[rb] ||
			a.Cols[1].F[ra] != b.Cols[1].F[rb] ||
			a.Cols[2].S[ra] != b.Cols[2].S[rb] {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestCacheMemoryHit(t *testing.T) {
	c := New(Config{Capacity: 1 << 20, Array: testArray()})
	in := testBatch(100, "a")
	key := Key{Plan: 1, Gen: 1}
	if !c.Put(key, in, time.Second) {
		t.Fatal("put refused")
	}
	got, tier, err := c.Get(key)
	if err != nil || tier != TierMemory {
		t.Fatalf("tier=%v err=%v, want memory hit", tier, err)
	}
	batchesEqual(t, in, got)
	// The returned batch is a private copy: mutating it must not poison
	// the cache.
	got.Cols[0].I[0] = 999
	again, _, _ := c.Get(key)
	if again.Cols[0].I[0] == 999 {
		t.Fatal("cache returned an aliased batch")
	}
	if _, tier, _ := c.Get(Key{Plan: 2, Gen: 1}); tier != TierNone {
		t.Fatal("phantom hit")
	}
	s := c.Stats()
	if s.Hits != 2 || s.HitsMemory != 2 || s.Misses != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestCacheDemoteRestore(t *testing.T) {
	arr := testArray()
	c := New(Config{Capacity: 1 << 20, Array: arr})
	in := testBatch(1000, "demote")
	key := Key{Plan: 7, Gen: 1}
	if !c.Put(key, in, time.Second) {
		t.Fatal("put refused")
	}
	if n := c.DemoteAll(); n != 1 {
		t.Fatalf("demoted %d entries, want 1", n)
	}
	if s := c.Stats(); s.HotEntries != 0 || s.DiskEntries != 1 || s.Reserved != 0 {
		t.Fatalf("after demotion: %+v", s)
	}
	if arr.LiveExtents() == 0 {
		t.Fatal("demotion wrote nothing to the array")
	}
	got, tier, err := c.Get(key)
	if err != nil || tier != TierNVMe {
		t.Fatalf("tier=%v err=%v, want nvme hit", tier, err)
	}
	batchesEqual(t, in, got)
	// The hit promoted the entry back to memory and freed its lease.
	if s := c.Stats(); s.HotEntries != 1 || s.DiskEntries != 0 {
		t.Fatalf("after restore: %+v", s)
	}
	if n := arr.LiveExtents(); n != 0 {
		t.Fatalf("%d extents live after promotion", n)
	}
	if _, tier, _ := c.Get(key); tier != TierMemory {
		t.Fatal("promoted entry did not serve from memory")
	}
	c.Clear()
	if n := arr.Leases(); n != 0 {
		t.Fatalf("%d leases live after Clear", n)
	}
}

func TestCacheCostAdmission(t *testing.T) {
	c := New(Config{Capacity: 1 << 20, Array: testArray()})
	// A result whose compute time is below the restore estimate must be
	// refused — caching it cannot win.
	if c.Put(Key{Plan: 1, Gen: 1}, testBatch(10, "cheap"), time.Nanosecond) {
		t.Fatal("cached a result cheaper than its restore")
	}
	if s := c.Stats(); s.Rejects != 1 || s.Puts != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestCacheEvictionDemotes(t *testing.T) {
	arr := testArray()
	// Capacity fits roughly two of the three entries.
	b := testBatch(1000, "x")
	size := batchFootprint(b)
	c := New(Config{Capacity: size*2 + size/2, Array: arr})
	for i := 0; i < 3; i++ {
		if !c.Put(Key{Plan: uint64(i), Gen: 1}, testBatch(1000, "x"), time.Duration(i+1)*time.Second) {
			t.Fatalf("put %d refused", i)
		}
	}
	s := c.Stats()
	if s.HotEntries != 2 || s.DiskEntries != 1 {
		t.Fatalf("want 2 hot + 1 demoted, got %+v", s)
	}
	// The lowest-cost entry (Plan 0) is the demotion victim.
	if _, tier, err := c.Get(Key{Plan: 0, Gen: 1}); err != nil || tier != TierNVMe {
		t.Fatalf("lowest-score entry: tier=%v err=%v, want nvme", tier, err)
	}
}

func TestCacheGovernorIntegration(t *testing.T) {
	gov := pages.NewGovernor(1<<20, 1<<16)
	arr := testArray()
	c := New(Config{Capacity: 1 << 19, Array: arr, Gov: gov})
	in := testBatch(2000, "gov")
	size := batchFootprint(in)
	if !c.Put(Key{Plan: 1, Gen: 1}, in, time.Second) {
		t.Fatal("put refused")
	}
	if got := gov.CacheReserved(); got != size {
		t.Fatalf("CacheReserved = %d, want %d", got, size)
	}
	// Shrink (the pressure callback) demotes and returns the reservation.
	if freed := c.Shrink(1); freed < size {
		t.Fatalf("Shrink freed %d, want >= %d", freed, size)
	}
	if got := gov.CacheReserved(); got != 0 {
		t.Fatalf("CacheReserved = %d after shrink, want 0", got)
	}
	if s := c.Stats(); s.DiskEntries != 1 || s.Demotions != 1 {
		t.Fatalf("shrink did not demote: %+v", s)
	}
	// The entry is still servable.
	got, tier, err := c.Get(Key{Plan: 1, Gen: 1})
	if err != nil || tier != TierNVMe {
		t.Fatalf("tier=%v err=%v", tier, err)
	}
	batchesEqual(t, in, got)
	c.Clear()
	if gov.CacheReserved() != 0 || arr.Leases() != 0 {
		t.Fatalf("drain failed: reserved=%d leases=%d", gov.CacheReserved(), arr.Leases())
	}
}

// TestCacheMemoryOnlyEvictionUnderGovernor evicts from a cache with no
// spill array: every hot-tier eviction takes the drop path. hotBytes and
// the governor reservation must be adjusted exactly once per drop
// (regression: evictHotLocked repeated dropLocked's accounting, driving
// both negative and panicking the governor's ReleaseCache).
func TestCacheMemoryOnlyEvictionUnderGovernor(t *testing.T) {
	gov := pages.NewGovernor(1<<20, 1<<16)
	probe := testBatch(1000, "memonly")
	size := batchFootprint(probe)
	c := New(Config{Capacity: size + size/2, Gov: gov})
	for i := 0; i < 3; i++ {
		if !c.Put(Key{Plan: uint64(i + 1), Gen: 1}, testBatch(1000, "memonly"), time.Second) {
			t.Fatalf("put %d refused", i)
		}
	}
	s := c.Stats()
	if s.HotEntries != 1 || s.HotBytes != size || s.Drops != 2 {
		t.Fatalf("after drop-evictions: %+v", s)
	}
	if got := gov.CacheReserved(); got != size {
		t.Fatalf("CacheReserved = %d, want %d", got, size)
	}
	c.Clear()
	if got := gov.CacheReserved(); got != 0 {
		t.Fatalf("CacheReserved = %d after Clear, want 0", got)
	}
}

// TestCacheEvictionWithFullDemotedTier evicts a hot entry when the
// demoted tier is full and the hot victim is the weakest entry: demotion
// refuses, so the victim drops. The drop must not repeat the eviction
// accounting (same regression as above, on the array-configured path).
func TestCacheEvictionWithFullDemotedTier(t *testing.T) {
	gov := pages.NewGovernor(1<<20, 1<<16)
	probe := testBatch(1000, "full")
	size := batchFootprint(probe)
	c := New(Config{Capacity: size + size/2, DiskFactor: 1, Array: testArray(), Gov: gov})
	keep := Key{Plan: 1, Gen: 1}
	// A high-cost entry fills the demoted tier (disk cap is 1.5×size).
	if !c.Put(keep, testBatch(1000, "full"), 10*time.Second) {
		t.Fatal("put refused")
	}
	if n := c.DemoteAll(); n != 1 {
		t.Fatalf("demoted %d entries, want 1", n)
	}
	// A lower-cost hot entry cannot displace it: eviction must drop it.
	if !c.Put(Key{Plan: 2, Gen: 1}, testBatch(1000, "full"), time.Second) {
		t.Fatal("put refused")
	}
	c.DemoteAll()
	s := c.Stats()
	if s.HotEntries != 0 || s.HotBytes != 0 || s.DiskEntries != 1 || s.Drops != 1 {
		t.Fatalf("after refused demotion: %+v", s)
	}
	if got := gov.CacheReserved(); got != 0 {
		t.Fatalf("CacheReserved = %d, want 0", got)
	}
	// The surviving demoted entry still restores.
	if _, tier, err := c.Get(keep); err != nil || tier != TierNVMe {
		t.Fatalf("tier=%v err=%v, want nvme", tier, err)
	}
	c.Clear()
	if got := gov.CacheReserved(); got != 0 {
		t.Fatalf("CacheReserved = %d after Clear, want 0", got)
	}
}

func TestCacheInvalidation(t *testing.T) {
	arr := testArray()
	c := New(Config{Capacity: 1 << 20, Array: arr})
	c.Put(Key{Plan: 1, Gen: 1}, testBatch(100, "old"), time.Second)
	c.Put(Key{Plan: 2, Gen: 1}, testBatch(100, "old2"), time.Second)
	c.DemoteAll()
	c.Put(Key{Plan: 3, Gen: 2}, testBatch(100, "new"), time.Second)
	c.RemoveStale(2)
	if _, tier, _ := c.Get(Key{Plan: 1, Gen: 1}); tier != TierNone {
		t.Fatal("stale hot entry survived invalidation")
	}
	if _, tier, _ := c.Get(Key{Plan: 2, Gen: 1}); tier != TierNone {
		t.Fatal("stale demoted entry survived invalidation")
	}
	if _, tier, _ := c.Get(Key{Plan: 3, Gen: 2}); tier != TierMemory {
		t.Fatal("current-generation entry dropped by invalidation")
	}
	if s := c.Stats(); s.Invalidated != 2 {
		t.Fatalf("stats: %+v", s)
	}
	if n := arr.Leases(); n != 0 {
		t.Fatalf("%d leases live after invalidation", n)
	}
}

func TestCacheDeviceLossDropsEntry(t *testing.T) {
	arr := testArray()
	c := New(Config{Capacity: 1 << 20, Array: arr})
	key := Key{Plan: 1, Gen: 1}
	c.Put(key, testBatch(500, "dead"), time.Second)
	c.DemoteAll()
	arr.KillDevice(0)
	arr.KillDevice(1)
	if _, tier, err := c.Get(key); err == nil && tier != TierNone {
		t.Fatalf("hit served from dead devices (tier=%v)", tier)
	}
	// The unreadable entry must be gone, not retried forever.
	if s := c.Stats(); s.DiskEntries != 0 {
		t.Fatalf("unreadable entry retained: %+v", s)
	}
}

// TestCacheDemoteRestoreMultiChunk demotes a result whose serialized tuple
// stream exceeds one 256KB chunk. Chunks must split on tuple boundaries —
// each chunk's stream is decoded independently on restore, so a tuple
// straddling a byte-offset split comes back as garbage (regression: large
// aggregate results restored as "corrupt tuple length").
func TestCacheDemoteRestoreMultiChunk(t *testing.T) {
	sch := &data.Schema{Cols: []data.ColumnDef{
		{Name: "k", Type: data.Int64},
		{Name: "v", Type: data.Float64},
	}}
	const rows = 40000 // 18 bytes/tuple serialized: well past two chunks
	b := data.NewBatch(sch, rows)
	for i := 0; i < rows; i++ {
		b.Cols[0].I = append(b.Cols[0].I, int64(i*4))
		b.Cols[1].F = append(b.Cols[1].F, float64(i)*1.25)
	}
	b.SetLen(rows)

	c := New(Config{Capacity: 4 << 20, Array: testArray()})
	key := Key{Plan: 7, Gen: 1}
	if !c.Put(key, b, time.Second) {
		t.Fatal("put refused")
	}
	if n := c.DemoteAll(); n != 1 {
		t.Fatalf("demoted %d entries, want 1", n)
	}
	got, tier, err := c.Get(key)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if tier != TierNVMe {
		t.Fatalf("tier %v, want nvme", tier)
	}
	if got.Rows() != rows {
		t.Fatalf("restored %d rows, want %d", got.Rows(), rows)
	}
	for i := 0; i < rows; i++ {
		r := got.Row(i)
		if got.Cols[0].I[r] != int64(i*4) || got.Cols[1].F[r] != float64(i)*1.25 {
			t.Fatalf("row %d corrupt: %d %v", i, got.Cols[0].I[r], got.Cols[1].F[r])
		}
	}
}
